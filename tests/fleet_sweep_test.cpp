// The RBVC_WORKERS determinism contract (ctest labels: fleet, tsan):
// merge bookkeeping under out-of-order shard completion, forked sweeps
// (fleet/spawn.h) passing and failing, worker-crash reassignment via the
// chaos hook, and the end-to-end harness guarantee -- a property checked
// at --workers 1 (in-process) and RBVC_WORKERS=8 (fleet) must report the
// same verdict, the same lowest failing episode, and write a
// BYTE-identical repro file. See docs/FLEET.md.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "fleet/merge.h"
#include "fleet/spawn.h"
#include "harness/property.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

// --- MergeState: out-of-order completion bookkeeping -----------------------

TEST(MergeState, CleanSweepDecidesOnlyAtFullCoverage) {
  fleet::MergeState m(32);
  m.complete(8, 16);
  m.complete(24, 32);
  EXPECT_EQ(m.covered_upto(), 0u);  // nothing contiguous from 0 yet
  EXPECT_FALSE(m.decided());
  m.complete(0, 8);
  EXPECT_EQ(m.covered_upto(), 16u);  // absorbed the stashed [8,16)
  EXPECT_FALSE(m.decided());
  m.complete(16, 24);
  EXPECT_EQ(m.covered_upto(), 32u);
  EXPECT_TRUE(m.decided());
  EXPECT_FALSE(m.has_candidate());
}

TEST(MergeState, CandidateWaitsForCoverageBelowIt) {
  fleet::MergeState m(24);
  m.complete(16, 24, 20);
  EXPECT_TRUE(m.has_candidate());
  EXPECT_EQ(m.candidate(), 20u);
  EXPECT_FALSE(m.decided()) << "episodes below 20 could still fail lower";
  // A later shard reports a LOWER failure: candidate must drop.
  m.complete(8, 16, 9);
  EXPECT_EQ(m.candidate(), 9u);
  EXPECT_FALSE(m.decided());
  m.complete(0, 8);
  EXPECT_EQ(m.candidate(), 9u);
  EXPECT_TRUE(m.decided()) << "everything below 9 covered and clean";
}

TEST(MergeState, OverlappingRecompletionsAreHarmless) {
  // A reassigned shard racing its presumed-dead owner completes twice.
  fleet::MergeState m(16);
  m.complete(0, 8);
  m.complete(4, 12);
  m.complete(0, 8);
  EXPECT_EQ(m.covered_upto(), 12u);
  m.complete(8, 16);
  EXPECT_TRUE(m.decided());
}

TEST(MergeState, NeedsOnlyRangesAtOrBelowTheCandidate) {
  fleet::MergeState m(64);
  EXPECT_TRUE(m.needs(48)) << "no candidate: everything is needed";
  m.complete(32, 48, 40);
  EXPECT_TRUE(m.needs(8));
  EXPECT_TRUE(m.needs(40));
  EXPECT_FALSE(m.needs(41)) << "above the candidate: can't lower verdict";
}

// --- forked sweeps ---------------------------------------------------------

harness::AsyncProperty planted_property(const std::string& repro_dir) {
  harness::AsyncProperty prop;
  prop.name = "fleet_sweep_planted";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 2;
    e.prm.use_witness = false;
    e.prm.quorum_override = 2;  // test-only hook: quorum below n - f
    e.d = 2;
    e.honest_inputs = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    e.scheduler = workload::SchedulerKind::kRandom;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = 24;
  prop.shrink_budget = 120;
  prop.repro_dir = repro_dir;
  return prop;
}

harness::AsyncProperty healthy_property(const std::string& repro_dir) {
  harness::AsyncProperty prop;
  prop.name = "fleet_sweep_healthy";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 4;
    e.d = 2;
    e.honest_inputs = workload::gaussian_cloud(rng, 3, 2);
    e.byzantine_ids = {rng.below(4)};
    e.strategy = workload::AsyncStrategy::kOutlierInput;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = 16;
  prop.repro_dir = repro_dir;
  return prop;
}

fleet::WorkerJob job_for(const harness::AsyncProperty& prop) {
  fleet::WorkerJob job;
  job.jobs = 1;
  job.episode = [&prop](std::size_t ep) {
    return harness::detail::episode_fails(prop, ep);
  };
  job.failure_report = [&prop](std::size_t failing) {
    const harness::detail::FailureTail t =
        harness::detail::failure_tail(prop, failing);
    fleet::FailureReport rep;
    rep.episode = failing;
    rep.original_len = t.original_len;
    rep.shrunk_len = t.shrunk_len;
    rep.message = t.failure;
    rep.repro_text = t.repro_text;
    return rep;
  };
  return job;
}

class FleetSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    save("RBVC_JOBS", jobs_);
    save("RBVC_WORKERS", workers_);
    save("RBVC_REPLAY", replay_);
    save("RBVC_FUZZ_EPISODES", episodes_);
    ::unsetenv("RBVC_WORKERS");
    ::unsetenv("RBVC_REPLAY");
    ::unsetenv("RBVC_FUZZ_EPISODES");
  }
  void TearDown() override {
    restore("RBVC_JOBS", jobs_);
    restore("RBVC_WORKERS", workers_);
    restore("RBVC_REPLAY", replay_);
    restore("RBVC_FUZZ_EPISODES", episodes_);
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  static void save(const char* name, std::pair<bool, std::string>& slot) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v ? v : ""};
  }
  static void restore(const char* name,
                      const std::pair<bool, std::string>& slot) {
    if (slot.first) {
      ::setenv(name, slot.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::pair<bool, std::string> jobs_;
  std::pair<bool, std::string> workers_;
  std::pair<bool, std::string> replay_;
  std::pair<bool, std::string> episodes_;
};

TEST_F(FleetSweepTest, HealthySweepPassesAcrossWorkers) {
  const harness::AsyncProperty prop = healthy_property(::testing::TempDir());
  fleet::SweepConfig cfg;
  cfg.episodes = prop.episodes;
  cfg.workers = 3;
  const fleet::SweepOutcome sw = fleet::run_forked_sweep(cfg, job_for(prop));
  EXPECT_FALSE(sw.failed);
  EXPECT_EQ(sw.episodes, prop.episodes);
  EXPECT_EQ(sw.stats.workers_spawned, 3u);
  EXPECT_EQ(sw.stats.worker_deaths, 0u);
  EXPECT_EQ(sw.stats.shards_reassigned, 0u);
  EXPECT_GE(sw.stats.shards_completed, cfg.workers);
  EXPECT_GE(sw.stats.episodes_run, prop.episodes);
}

TEST_F(FleetSweepTest, WorkerCrashReassignsOrphanedRangeVerdictUnchanged) {
  // In-process reference verdict first (workers <= 1 takes the inline
  // harness path), then a forked sweep where the chaos hook SIGKILLs a
  // worker mid-sweep. The death must be survived by reassignment, and the
  // verdict -- episode, message, repro bytes -- must not move.
  const std::string ref_dir = ::testing::TempDir() + "/fleet_ref";
  const std::string chaos_dir = ::testing::TempDir() + "/fleet_chaos";
  std::filesystem::create_directories(ref_dir);
  std::filesystem::create_directories(chaos_dir);

  ::setenv("RBVC_JOBS", "1", 1);
  const harness::AsyncProperty ref_prop = planted_property(ref_dir);
  const auto ref = harness::check_property<harness::AsyncRunner>(ref_prop);
  ASSERT_FALSE(ref.passed) << harness::describe(ref);

  const harness::AsyncProperty prop = planted_property(chaos_dir);
  fleet::SweepConfig cfg;
  cfg.episodes = prop.episodes;
  cfg.workers = 3;
  cfg.max_shard = 2;  // many small shards: the kill lands mid-sweep
  cfg.chaos_kill_after_shards = 1;
  const fleet::SweepOutcome sw = fleet::run_forked_sweep(cfg, job_for(prop));

  EXPECT_EQ(sw.stats.worker_deaths, 1u);
  EXPECT_EQ(sw.stats.worker_restarts, 1u);
  ASSERT_TRUE(sw.failed);
  EXPECT_EQ(sw.failing_episode, ref.failing_episode);
  EXPECT_EQ(sw.failure, ref.failure);
  EXPECT_EQ(sw.original_len, ref.original_len);
  EXPECT_EQ(sw.shrunk_len, ref.shrunk_len);
  // The shipped repro bytes ARE the reference file (modulo the property
  // name baked into both paths being the same here).
  EXPECT_EQ(sw.repro_text, slurp(ref.repro_path));
}

TEST_F(FleetSweepTest, CheckPropertyWorkers1Vs8ByteIdenticalRepro) {
  // The end-to-end contract through check_property itself: RBVC_WORKERS=8
  // must fork a fleet and still write the byte-identical repro file the
  // in-process run writes, into its own directory.
  const std::string dir1 = ::testing::TempDir() + "/workers1";
  const std::string dir8 = ::testing::TempDir() + "/workers8";
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir8);

  ::setenv("RBVC_JOBS", "2", 1);
  ::setenv("RBVC_WORKERS", "1", 1);  // <= 1: the in-process path
  const auto serial =
      harness::check_property<harness::AsyncRunner>(planted_property(dir1));
  ASSERT_FALSE(serial.passed) << harness::describe(serial);
  ASSERT_FALSE(serial.repro_path.empty());

  ::setenv("RBVC_WORKERS", "8", 1);
  const auto fleet_run =
      harness::check_property<harness::AsyncRunner>(planted_property(dir8));
  ASSERT_FALSE(fleet_run.passed) << harness::describe(fleet_run);
  ASSERT_FALSE(fleet_run.repro_path.empty());

  EXPECT_EQ(fleet_run.failing_episode, serial.failing_episode);
  EXPECT_EQ(fleet_run.episodes, serial.episodes);
  EXPECT_EQ(fleet_run.failure, serial.failure);
  EXPECT_EQ(fleet_run.original_len, serial.original_len);
  EXPECT_EQ(fleet_run.shrunk_len, serial.shrunk_len);
  EXPECT_NE(fleet_run.repro_path, serial.repro_path);
  EXPECT_EQ(slurp(fleet_run.repro_path), slurp(serial.repro_path));
}

TEST_F(FleetSweepTest, BackToBackFleetSweepsStayByteIdentical) {
  // Two fleet sweeps in the SAME process must write the same repro bytes.
  // This pins the publish_metrics opt-in: if the harness path minted
  // fleet.* keys into the global registry after sweep one, sweep two's
  // forked workers would inherit them and their repro metrics snapshot
  // would grow nine extra keys (exactly how `RBVC_WORKERS=4 ctest -L
  // fuzz` first caught it in parallel_determinism_test).
  const std::string dira = ::testing::TempDir() + "/fleet_a";
  const std::string dirb = ::testing::TempDir() + "/fleet_b";
  std::filesystem::create_directories(dira);
  std::filesystem::create_directories(dirb);

  ::setenv("RBVC_JOBS", "2", 1);
  ::setenv("RBVC_WORKERS", "4", 1);
  const auto first =
      harness::check_property<harness::AsyncRunner>(planted_property(dira));
  ASSERT_FALSE(first.passed) << harness::describe(first);
  const auto second =
      harness::check_property<harness::AsyncRunner>(planted_property(dirb));
  ASSERT_FALSE(second.passed) << harness::describe(second);

  EXPECT_EQ(second.failing_episode, first.failing_episode);
  EXPECT_NE(second.repro_path, first.repro_path);
  EXPECT_EQ(slurp(second.repro_path), slurp(first.repro_path));
}

TEST_F(FleetSweepTest, HealthyPropertyThroughCheckPropertyFleet) {
  ::setenv("RBVC_JOBS", "1", 1);
  ::setenv("RBVC_WORKERS", "4", 1);
  const auto res = harness::check_property<harness::AsyncRunner>(
      healthy_property(::testing::TempDir()));
  EXPECT_TRUE(res.passed) << harness::describe(res);
  EXPECT_EQ(res.episodes, 16u);
  EXPECT_TRUE(res.repro_path.empty());
}

TEST_F(FleetSweepTest, EnvWorkersParsesLikeEnvJobs) {
  ::setenv("RBVC_WORKERS", "6", 1);
  EXPECT_EQ(fleet::env_workers(), 6u);
  ::setenv("RBVC_WORKERS", "0", 1);
  EXPECT_EQ(fleet::env_workers(), 0u);
  ::setenv("RBVC_WORKERS", "banana", 1);
  EXPECT_EQ(fleet::env_workers(), 0u);
  ::setenv("RBVC_WORKERS", "4x", 1);
  EXPECT_EQ(fleet::env_workers(), 0u);
  ::unsetenv("RBVC_WORKERS");
  EXPECT_EQ(fleet::env_workers(), 0u);
}

}  // namespace
}  // namespace rbvc
