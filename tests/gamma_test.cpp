#include "hull/gamma.h"

#include <gtest/gtest.h>

#include "geometry/hull.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(GammaTest, NonEmptyAboveTverbergBound) {
  // n >= (d+1)f + 1 implies Gamma(Y) != empty (Tverberg).
  Rng rng(163);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t d = 2 + rep % 3;
    const std::size_t f = 1 + rep % 2;
    const std::size_t n = (d + 1) * f + 1;
    const auto y = workload::gaussian_cloud(rng, n, d);
    const auto p = gamma_point(y, f);
    ASSERT_TRUE(p.has_value()) << "d=" << d << " f=" << f;
    // Certify: within every drop-f hull.
    for (const auto& t : drop_f_subsets(y, f)) {
      EXPECT_TRUE(in_hull(*p, t, 1e-6));
    }
  }
}

TEST(GammaTest, EmptyForSimplexVertices) {
  // d+1 affinely independent points with f = 1: the facets' hulls have
  // empty intersection (that's why delta* > 0 in Lemma 13).
  Rng rng(167);
  const auto verts = workload::random_simplex(rng, 3);
  EXPECT_FALSE(gamma_point(verts, 1).has_value());
}

TEST(GammaTest, ExcessMatchesDefinition) {
  Rng rng(173);
  const auto y = workload::gaussian_cloud(rng, 5, 3);
  const Vec u = rng.normal_vec(3);
  const double excess = gamma_excess(u, y, 1, 2.0);
  double expect = 0.0;
  for (const auto& t : drop_f_subsets(y, 1)) {
    expect = std::max(expect, project_to_hull(u, t).distance);
  }
  EXPECT_NEAR(excess, expect, 1e-12);
}

TEST(GammaTest, DeltaLinearFeasibilityThreshold) {
  // For the simplex, Gamma_(delta,inf) becomes non-empty at some threshold;
  // verify monotonicity and witness correctness around it.
  Rng rng(179);
  const auto verts = workload::random_simplex(rng, 3);
  double lo = 0.0, hi = 10.0;
  for (int it = 0; it < 30; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (gamma_delta_point_linear(verts, 1, mid, kInfNorm)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double threshold = hi;
  EXPECT_GT(threshold, 1e-6);
  const auto w =
      gamma_delta_point_linear(verts, 1, threshold * 1.05, kInfNorm);
  ASSERT_TRUE(w.has_value());
  EXPECT_LE(gamma_excess(*w, verts, 1, kInfNorm), threshold * 1.05 + 1e-6);
  EXPECT_FALSE(
      gamma_delta_point_linear(verts, 1, threshold * 0.5, kInfNorm));
}

TEST(GammaTest, DeltaL1Witness) {
  Rng rng(181);
  const auto verts = workload::random_simplex(rng, 3);
  const auto w = gamma_delta_point_linear(verts, 1, 5.0, 1.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_LE(gamma_excess(*w, verts, 1, 1.0), 5.0 + 1e-6);
}

TEST(GammaTest, Delta2PocsWitness) {
  Rng rng(191);
  const auto verts = workload::random_simplex(rng, 3);
  // At a generous delta the POCS witness must exist and verify.
  const auto w = gamma_delta2_point(verts, 1, 5.0);
  ASSERT_TRUE(w.has_value());
  EXPECT_LE(gamma_excess(*w, verts, 1, 2.0), 5.0 + 1e-4);
}

TEST(GammaTest, GammaPointDeterministic) {
  Rng rng(193);
  const auto y = workload::gaussian_cloud(rng, 6, 2);
  const auto a = gamma_point(y, 1);
  const auto b = gamma_point(y, 1);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
}

TEST(GammaTest, ValidatesArguments) {
  // p = 2 has no linear encoding.
  EXPECT_THROW(gamma_delta_point_linear({{0.0}, {1.0}}, 1, 1.0, 2.0),
               invalid_argument);
  EXPECT_THROW(gamma_delta_point_linear({{0.0}, {1.0}}, 1, -1.0, kInfNorm),
               invalid_argument);
}

}  // namespace
}  // namespace rbvc
