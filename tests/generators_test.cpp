#include "workload/generators.h"

#include <gtest/gtest.h>

#include "linalg/qr.h"

namespace rbvc::workload {
namespace {

TEST(GeneratorsTest, ShapesAndDeterminism) {
  Rng a(1), b(1);
  const auto ga = gaussian_cloud(a, 5, 3);
  const auto gb = gaussian_cloud(b, 5, 3);
  ASSERT_EQ(ga.size(), 5u);
  EXPECT_EQ(ga.front().size(), 3u);
  EXPECT_EQ(ga, gb);  // seeded determinism
}

TEST(GeneratorsTest, UniformCubeBounds) {
  Rng rng(2);
  for (const Vec& p : uniform_cube(rng, 20, 4, -2.0, 3.0)) {
    for (double v : p) {
      EXPECT_GE(v, -2.0);
      EXPECT_LT(v, 3.0);
    }
  }
}

TEST(GeneratorsTest, SphereRadius) {
  Rng rng(3);
  for (const Vec& p : sphere_points(rng, 20, 5, 2.5)) {
    EXPECT_NEAR(norm2(p), 2.5, 1e-10);
  }
}

TEST(GeneratorsTest, ClusteredSeparation) {
  Rng rng(4);
  const auto pts = clustered(rng, 20, 3, 10.0, 0.01);
  // Consecutive points alternate clusters: distance ~ separation.
  EXPECT_GT(dist2(pts[0], pts[1]), 8.0);
  EXPECT_LT(dist2(pts[0], pts[2]), 2.0);
}

TEST(GeneratorsTest, RandomSimplexIsSimplex) {
  Rng rng(5);
  for (int rep = 0; rep < 5; ++rep) {
    const auto s = random_simplex(rng, 4);
    ASSERT_EQ(s.size(), 5u);
    EXPECT_TRUE(affinely_independent(s, 1e-8));
  }
}

TEST(GeneratorsTest, DegenerateSubspaceRank) {
  Rng rng(6);
  const auto pts = degenerate_subspace(rng, 8, 6, 2);
  ASSERT_EQ(pts.size(), 8u);
  // Differences span at most a 2-dimensional space.
  std::vector<Vec> diffs;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    diffs.push_back(sub(pts[i], pts.back()));
  }
  EXPECT_LE(orthonormal_basis(diffs).size(), 2u);
  EXPECT_THROW(degenerate_subspace(rng, 3, 2, 5), invalid_argument);
}

TEST(GeneratorsTest, IdenticalPoints) {
  Rng rng(7);
  const auto pts = identical_points(rng, 4, 3);
  for (const Vec& p : pts) EXPECT_EQ(p, pts.front());
}

}  // namespace
}  // namespace rbvc::workload
