// Broadcast-substrate property harness (ctest label: fuzz): standalone
// Bracha-RBC and Dolev-Strong experiments under the same check_property
// engine as the consensus suites. Each protocol gets a healthy sweep
// (including the planted attack with the defense enabled, proving
// containment) and a planted violation -- an equivocating RBC source with
// sabotaged quorums, a forged Dolev-Strong signature chain with validation
// off -- that must be caught by the oracle, minimized, written as a v2
// repro, and re-executed via RBVC_REPLAY.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/property.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

class HarnessBroadcastPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    save("RBVC_REPLAY", replay_);
    save("RBVC_FUZZ_EPISODES", episodes_);
  }
  void TearDown() override {
    restore("RBVC_REPLAY", replay_);
    restore("RBVC_FUZZ_EPISODES", episodes_);
  }

 private:
  static void save(const char* name, std::pair<bool, std::string>& slot) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v ? v : ""};
  }
  static void restore(const char* name,
                      const std::pair<bool, std::string>& slot) {
    if (slot.first) {
      ::setenv(name, slot.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::pair<bool, std::string> replay_;
  std::pair<bool, std::string> episodes_;
};

// ---------------------------------------------------------------------------
// Bracha RBC.
// ---------------------------------------------------------------------------

harness::RbcProperty healthy_rbc_property() {
  harness::RbcProperty prop;
  prop.name = "healthy_bracha_rbc";
  prop.generate = [](Rng& rng) {
    workload::RbcExperiment e;
    e.n = 4 + rng.below(2);
    e.f = 1;
    const std::size_t faults = rng.below(2);
    e.honest_inputs = workload::gaussian_cloud(rng, e.n - faults, 2);
    if (faults) e.byzantine_ids = {rng.below(e.n)};
    constexpr workload::AsyncStrategy strategies[] = {
        workload::AsyncStrategy::kSilent,
        workload::AsyncStrategy::kEquivocate,
        workload::AsyncStrategy::kOutlierInput,
        workload::AsyncStrategy::kCrashMidway};
    e.strategy = strategies[rng.below(4)];
    e.scheduler = rng.below(2) == 0 ? workload::SchedulerKind::kRandom
                                    : workload::SchedulerKind::kLaggard;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::rbc_contract_oracle();
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

/// The planted violation: an equivocating source plus sabotaged vote
/// thresholds (deliver on the first READY, echo on the first INIT). Without
/// the echo-quorum intersection argument, which correct process delivers
/// which content depends on message order -- a schedule-dependent
/// no-equivocation violation the pick shrinker can minimize.
harness::RbcProperty planted_rbc_property() {
  harness::RbcProperty prop;
  prop.name = "rbc_planted_equivocation";
  prop.generate = [](Rng& rng) {
    workload::RbcExperiment e;
    e.n = 4;
    e.f = 1;
    e.byzantine_ids = {3};
    e.honest_inputs = workload::gaussian_cloud(rng, 3, 2);
    e.strategy = workload::AsyncStrategy::kEquivocate;
    e.quorums = {/*echo=*/1, /*ready_amplify=*/1, /*ready_deliver=*/1};
    e.scheduler = workload::SchedulerKind::kRandom;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::rbc_contract_oracle();
  prop.episodes = 12;
  prop.shrink_budget = 150;
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

TEST_F(HarnessBroadcastPropertyTest, HealthyRbcHoldsAcrossEpisodes) {
  auto prop = healthy_rbc_property();
  prop.episodes = harness::fuzz_episodes(4);  // nightly scale via env
  const auto res = harness::check_property<harness::RbcRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
  EXPECT_TRUE(res.repro_path.empty());
}

TEST_F(HarnessBroadcastPropertyTest, ProtocolQuorumsContainEquivocation) {
  auto prop = planted_rbc_property();
  prop.name = "rbc_equivocation_contained";
  auto inner = prop.generate;
  prop.generate = [inner](Rng& rng) {
    auto e = inner(rng);
    e.quorums = {};  // protocol thresholds
    return e;
  };
  prop.episodes = 6;
  const auto res = harness::check_property<harness::RbcRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
}

TEST_F(HarnessBroadcastPropertyTest, PlantedEquivocationIsCaughtAndReplayed) {
  ::unsetenv("RBVC_REPLAY");
  ::unsetenv("RBVC_FUZZ_EPISODES");
  const auto prop = planted_rbc_property();
  const auto fuzzed = harness::check_property<harness::RbcRunner>(prop);
  ASSERT_FALSE(fuzzed.passed) << harness::describe(fuzzed);
  ASSERT_FALSE(fuzzed.repro_path.empty());
  EXPECT_LE(fuzzed.shrunk_len, fuzzed.original_len);

  const auto rep = harness::load_rbc_repro(fuzzed.repro_path);
  EXPECT_EQ(rep.property, prop.name);
  EXPECT_EQ(rep.experiment.quorums.ready_deliver, 1u);
  EXPECT_EQ(harness::peek_repro_file(fuzzed.repro_path).mode,
            harness::ReproMode::kRbc);

  ::setenv("RBVC_REPLAY", fuzzed.repro_path.c_str(), 1);
  const auto replayed = harness::check_property<harness::RbcRunner>(prop);
  EXPECT_TRUE(replayed.replayed_from_file);
  EXPECT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.episodes, 1u);
  EXPECT_FALSE(replayed.failure.empty());
}

// ---------------------------------------------------------------------------
// Dolev-Strong broadcast.
// ---------------------------------------------------------------------------

harness::DsProperty planted_ds_property() {
  harness::DsProperty prop;
  prop.name = "ds_planted_bad_chain";
  prop.generate = [](Rng& rng) {
    workload::BroadcastExperiment e;
    e.n = 4;
    e.f = 1;
    e.byzantine_ids = {3};
    e.honest_inputs = workload::gaussian_cloud(rng, 3, 2);
    e.strategy = workload::SyncStrategy::kBadChainRelay;
    e.validate_chains = false;  // test-only fault injection
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::broadcast_agreement_oracle();
  prop.episodes = 4;
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

TEST_F(HarnessBroadcastPropertyTest, HealthyDolevStrongHoldsAcrossEpisodes) {
  harness::DsProperty prop;
  prop.name = "healthy_dolev_strong";
  prop.generate = [](Rng& rng) {
    workload::BroadcastExperiment e;
    e.f = 1 + rng.below(2);
    e.n = e.f + 2 + rng.below(3);
    const std::size_t faults = rng.below(e.f + 1);
    e.honest_inputs = workload::gaussian_cloud(rng, e.n - faults, 2);
    std::vector<std::size_t> ids(e.n);
    for (std::size_t i = 0; i < e.n; ++i) ids[i] = i;
    rng.shuffle(ids);
    e.byzantine_ids.assign(ids.begin(), ids.begin() + faults);
    constexpr workload::SyncStrategy strategies[] = {
        workload::SyncStrategy::kSilent,
        workload::SyncStrategy::kEquivocate,
        workload::SyncStrategy::kLyingRelay,
        workload::SyncStrategy::kCrashMidway,
        workload::SyncStrategy::kBadChainRelay};  // contained: validation on
    e.strategy = strategies[rng.below(5)];
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::broadcast_agreement_oracle();
  prop.episodes = harness::fuzz_episodes(4);
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property<harness::DsRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
}

TEST_F(HarnessBroadcastPropertyTest, PlantedBadChainIsCaughtAndReplayed) {
  ::unsetenv("RBVC_REPLAY");
  ::unsetenv("RBVC_FUZZ_EPISODES");
  const auto prop = planted_ds_property();
  const auto fuzzed = harness::check_property<harness::DsRunner>(prop);
  ASSERT_FALSE(fuzzed.passed) << harness::describe(fuzzed);
  ASSERT_FALSE(fuzzed.repro_path.empty());

  // The repro file round-trips byte-for-byte through load + serialize.
  const auto rep = harness::load_ds_repro(fuzzed.repro_path);
  EXPECT_EQ(harness::serialize_repro(rep),
            harness::read_repro_file(fuzzed.repro_path));
  EXPECT_EQ(rep.property, prop.name);
  EXPECT_FALSE(rep.experiment.validate_chains);

  ::setenv("RBVC_REPLAY", fuzzed.repro_path.c_str(), 1);
  const auto replayed = harness::check_property<harness::DsRunner>(prop);
  EXPECT_TRUE(replayed.replayed_from_file);
  EXPECT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.episodes, 1u);
  // Deterministic re-run matched the stored checkpoints; the reported
  // failure is the oracle's, not a divergence.
  EXPECT_EQ(replayed.failure.find("divergence"), std::string::npos)
      << replayed.failure;
}

}  // namespace
}  // namespace rbvc
