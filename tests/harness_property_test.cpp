// End-to-end harness driver tests (ctest label: fuzz). Episode counts obey
// the RBVC_FUZZ_EPISODES env knob so nightly sweeps can scale these up
// (e.g. RBVC_FUZZ_EPISODES=500 ctest -L fuzz) while tier-1 stays fast, and
// RBVC_REPLAY=<repro file> pins a binary to one recorded counterexample.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/property.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

class HarnessPropertyTest : public ::testing::Test {
 protected:
  // Some tests manipulate the harness env knobs; snapshot and restore so
  // they cannot leak into each other. The knobs are deliberately NOT
  // cleared here: an externally set RBVC_FUZZ_EPISODES / RBVC_REPLAY must
  // keep steering the suite (that is the documented ctest surface), so
  // only the tests that need a controlled environment unset them.
  void SetUp() override {
    save("RBVC_REPLAY", replay_);
    save("RBVC_FUZZ_EPISODES", episodes_);
  }
  void TearDown() override {
    restore("RBVC_REPLAY", replay_);
    restore("RBVC_FUZZ_EPISODES", episodes_);
  }

 private:
  static void save(const char* name, std::pair<bool, std::string>& slot) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v ? v : ""};
  }
  static void restore(const char* name,
                      const std::pair<bool, std::string>& slot) {
    if (slot.first) {
      ::setenv(name, slot.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::pair<bool, std::string> replay_;
  std::pair<bool, std::string> episodes_;
};

harness::AsyncProperty healthy_property() {
  harness::AsyncProperty prop;
  prop.name = "healthy_async_averaging";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4 + rng.below(2);
    e.prm.f = 1;
    e.prm.rounds = 4 + rng.below(3);
    e.d = 2 + rng.below(2);
    const std::size_t faults = rng.below(2);
    e.honest_inputs =
        workload::gaussian_cloud(rng, e.prm.n - faults, e.d);
    if (faults) e.byzantine_ids = {rng.below(e.prm.n)};
    constexpr workload::AsyncStrategy strategies[] = {
        workload::AsyncStrategy::kSilent,
        workload::AsyncStrategy::kOutlierInput,
        workload::AsyncStrategy::kCrashMidway};
    e.strategy = strategies[rng.below(3)];
    e.scheduler = rng.below(2) == 0 ? workload::SchedulerKind::kRandom
                                    : workload::SchedulerKind::kLaggard;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

harness::AsyncProperty planted_property() {
  harness::AsyncProperty prop;
  prop.name = "harness_planted_bug";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 2;
    e.prm.use_witness = false;
    e.prm.quorum_override = 2;  // test-only hook: quorum below n - f
    e.d = 2;
    e.honest_inputs = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    e.scheduler = workload::SchedulerKind::kRandom;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = 10;
  prop.shrink_budget = 120;
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

TEST_F(HarnessPropertyTest, HealthyProtocolHoldsAcrossEpisodes) {
  auto prop = healthy_property();
  prop.episodes = harness::fuzz_episodes(3);  // nightly scale via env
  const auto res = harness::check_property<harness::AsyncRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
  EXPECT_EQ(res.episodes, prop.episodes);
  EXPECT_TRUE(res.repro_path.empty());
}

TEST_F(HarnessPropertyTest, ReplayEnvPinsTheMatchingProperty) {
  ::unsetenv("RBVC_REPLAY");  // must fuzz first to produce the repro
  ::unsetenv("RBVC_FUZZ_EPISODES");
  const auto prop = planted_property();
  const auto fuzzed = harness::check_property<harness::AsyncRunner>(prop);
  ASSERT_FALSE(fuzzed.passed) << harness::describe(fuzzed);
  ASSERT_FALSE(fuzzed.repro_path.empty());

  ::setenv("RBVC_REPLAY", fuzzed.repro_path.c_str(), 1);
  const auto replayed = harness::check_property<harness::AsyncRunner>(prop);
  EXPECT_TRUE(replayed.replayed_from_file);
  EXPECT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.episodes, 1u);
  EXPECT_FALSE(replayed.failure.empty());

  // A property with a different name ignores the repro and fuzzes normally.
  auto other = healthy_property();
  other.episodes = 2;
  const auto other_res = harness::check_property<harness::AsyncRunner>(other);
  EXPECT_FALSE(other_res.replayed_from_file);
  EXPECT_TRUE(other_res.passed) << harness::describe(other_res);
}

TEST_F(HarnessPropertyTest, FuzzEpisodesEnvKnob) {
  ::unsetenv("RBVC_FUZZ_EPISODES");
  EXPECT_EQ(harness::fuzz_episodes(7), 7u);
  ::setenv("RBVC_FUZZ_EPISODES", "23", 1);
  EXPECT_EQ(harness::fuzz_episodes(7), 23u);
  ::setenv("RBVC_FUZZ_EPISODES", "garbage", 1);
  EXPECT_EQ(harness::fuzz_episodes(7), 7u);
  ::setenv("RBVC_FUZZ_EPISODES", "-4", 1);
  EXPECT_EQ(harness::fuzz_episodes(7), 7u);
}

TEST_F(HarnessPropertyTest, ReproFileRoundTripsLosslessly) {
  harness::AsyncRepro rep;
  rep.property = "roundtrip";
  rep.failure = "agreement: line one\nline \\two";
  rep.experiment.prm.n = 7;
  rep.experiment.prm.f = 2;
  rep.experiment.prm.rounds = 5;
  rep.experiment.prm.rule =
      consensus::AsyncAveragingProcess::Round0Rule::kRelaxedLinf;
  rep.experiment.prm.use_witness = false;
  rep.experiment.prm.quorum_override = 3;
  rep.experiment.d = 3;
  rep.experiment.honest_inputs = {{0.1 + 0.2, -3.75, 1e-17},
                                  {5.0, 6.25, -0.0078125}};
  rep.experiment.byzantine_ids = {1, 4};
  rep.experiment.strategy = workload::AsyncStrategy::kEquivocate;
  rep.experiment.scheduler = workload::SchedulerKind::kLaggard;
  rep.experiment.seed = 0xDEADBEEFCAFEULL;
  rep.experiment.max_events = 123456;
  rep.schedule.add_pick(3);
  rep.schedule.add_pick(0);
  rep.schedule.add_round(9);
  rep.trace_dump = "deliver 1 0 echo 0->1 meta=[] payload=(1, 2)\n";

  const auto parsed =
      harness::parse_async_repro(harness::serialize_async_repro(rep));
  EXPECT_EQ(parsed.property, rep.property);
  EXPECT_EQ(parsed.failure, rep.failure);
  EXPECT_EQ(parsed.experiment.prm.n, rep.experiment.prm.n);
  EXPECT_EQ(parsed.experiment.prm.f, rep.experiment.prm.f);
  EXPECT_EQ(parsed.experiment.prm.rounds, rep.experiment.prm.rounds);
  EXPECT_EQ(parsed.experiment.prm.rule, rep.experiment.prm.rule);
  EXPECT_EQ(parsed.experiment.prm.use_witness,
            rep.experiment.prm.use_witness);
  EXPECT_EQ(parsed.experiment.prm.quorum_override,
            rep.experiment.prm.quorum_override);
  EXPECT_EQ(parsed.experiment.d, rep.experiment.d);
  // Bitwise-exact doubles via the %.17g round trip.
  EXPECT_EQ(parsed.experiment.honest_inputs, rep.experiment.honest_inputs);
  EXPECT_EQ(parsed.experiment.byzantine_ids, rep.experiment.byzantine_ids);
  EXPECT_EQ(parsed.experiment.strategy, rep.experiment.strategy);
  EXPECT_EQ(parsed.experiment.scheduler, rep.experiment.scheduler);
  EXPECT_EQ(parsed.experiment.seed, rep.experiment.seed);
  EXPECT_EQ(parsed.experiment.max_events, rep.experiment.max_events);
  EXPECT_TRUE(parsed.schedule == rep.schedule);
  EXPECT_EQ(parsed.trace_dump, rep.trace_dump);
}

TEST_F(HarnessPropertyTest, MalformedReproIsRejected) {
  EXPECT_THROW(harness::parse_async_repro("not a repro"), invalid_argument);
  EXPECT_THROW(harness::parse_async_repro("rbvc-async-repro v1\n"),
               invalid_argument);
  EXPECT_THROW(harness::load_async_repro("/nonexistent/repro.txt"),
               invalid_argument);
}

}  // namespace
}  // namespace rbvc
