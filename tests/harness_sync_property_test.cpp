// Sync-model property harness (ctest label: fuzz): the same
// check_property engine as the async suites, instantiated for lockstep
// consensus runs. Covers the healthy sweep, a planted Dolev-Strong
// bad-chain counterexample (caught, input-shrunk, written as a v2 repro,
// re-executed via RBVC_REPLAY), and checkpoint-divergence detection for
// mutated repro files.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/property.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

class HarnessSyncPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    save("RBVC_REPLAY", replay_);
    save("RBVC_FUZZ_EPISODES", episodes_);
  }
  void TearDown() override {
    restore("RBVC_REPLAY", replay_);
    restore("RBVC_FUZZ_EPISODES", episodes_);
  }

 private:
  static void save(const char* name, std::pair<bool, std::string>& slot) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v ? v : ""};
  }
  static void restore(const char* name,
                      const std::pair<bool, std::string>& slot) {
    if (slot.first) {
      ::setenv(name, slot.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::pair<bool, std::string> replay_;
  std::pair<bool, std::string> episodes_;
};

std::size_t nonzero_coords(const std::vector<Vec>& inputs) {
  std::size_t count = 0;
  for (const Vec& v : inputs) {
    for (double x : v) count += x != 0.0;
  }
  return count;
}

/// Chaos-sweep-shaped healthy generator: both backends, every strategy,
/// serializable decision rule. Agreement is exact for sync runs, so the
/// oracle's eps can be tight.
harness::SyncProperty healthy_property() {
  harness::SyncProperty prop;
  prop.name = "healthy_sync_consensus";
  prop.generate = [](Rng& rng) {
    workload::SyncExperiment e;
    e.f = 1 + rng.below(2);
    const std::size_t d = 2 + rng.below(2);
    const bool use_ds = rng.below(2) == 0;
    // kappa = 1 validity needs every drop-f subset to keep an honest
    // input: n >= 2f+1 for DS, 3f+1 for EIG (cf. chaos_sweep_test).
    e.n = (use_ds ? std::max(e.f + 2, 2 * e.f + 1) : 3 * e.f + 1) +
          rng.below(2);
    e.backend = use_ds ? workload::SyncBackend::kDolevStrong
                       : workload::SyncBackend::kEig;
    const std::size_t faults = rng.below(e.f + 1);
    e.honest_inputs = workload::gaussian_cloud(rng, e.n - faults, d);
    std::vector<std::size_t> ids(e.n);
    for (std::size_t i = 0; i < e.n; ++i) ids[i] = i;
    rng.shuffle(ids);
    e.byzantine_ids.assign(ids.begin(), ids.begin() + faults);
    constexpr workload::SyncStrategy strategies[] = {
        workload::SyncStrategy::kSilent,
        workload::SyncStrategy::kEquivocate,
        workload::SyncStrategy::kLyingRelay,
        workload::SyncStrategy::kOutlierInput,
        workload::SyncStrategy::kCrashMidway,
        workload::SyncStrategy::kBadChainRelay};
    e.strategy = strategies[rng.below(6)];
    e.rule = workload::SyncRule::kAlgoRelaxed;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::sync_decide_agree_valid_oracle(1e-9, 1.0);
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

/// The planted counterexample: chain validation disabled at the correct
/// processes plus a bad-chain relayer. The forged chain poisons the lower
/// half of the receivers' extracted set for the victim's instance, so
/// kFirstResolved (decide the resolved slot-0 value) disagrees across
/// correct processes on every schedule -- the attack Dolev-Strong's chain
/// check exists to contain.
harness::SyncProperty planted_bad_chain_property() {
  harness::SyncProperty prop;
  prop.name = "sync_planted_bad_chain";
  prop.generate = [](Rng& rng) {
    workload::SyncExperiment e;
    e.n = 4;
    e.f = 1;
    e.byzantine_ids = {3};
    e.honest_inputs = workload::gaussian_cloud(rng, 3, 2);
    e.strategy = workload::SyncStrategy::kBadChainRelay;
    e.backend = workload::SyncBackend::kDolevStrong;
    e.validate_chains = false;  // test-only fault injection
    e.rule = workload::SyncRule::kFirstResolved;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::sync_decide_agree_valid_oracle(1e-6, 5.0);
  prop.episodes = 4;
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

TEST_F(HarnessSyncPropertyTest, HealthyConsensusHoldsAcrossEpisodes) {
  auto prop = healthy_property();
  prop.episodes = harness::fuzz_episodes(4);  // nightly scale via env
  const auto res = harness::check_property<harness::SyncRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
  EXPECT_TRUE(res.repro_path.empty());
}

TEST_F(HarnessSyncPropertyTest, ValidationOnContainsTheBadChainAttack) {
  auto prop = planted_bad_chain_property();
  prop.name = "sync_bad_chain_contained";
  auto inner = prop.generate;
  prop.generate = [inner](Rng& rng) {
    auto e = inner(rng);
    e.validate_chains = true;  // the protocol as specified
    return e;
  };
  const auto res = harness::check_property<harness::SyncRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
}

TEST_F(HarnessSyncPropertyTest, PlantedBadChainIsCaughtShrunkAndReplayed) {
  ::unsetenv("RBVC_REPLAY");
  ::unsetenv("RBVC_FUZZ_EPISODES");
  const auto prop = planted_bad_chain_property();
  const auto fuzzed = harness::check_property<harness::SyncRunner>(prop);
  ASSERT_FALSE(fuzzed.passed) << harness::describe(fuzzed);
  ASSERT_FALSE(fuzzed.repro_path.empty());

  // The repro holds the minimized experiment: the disagreement needs only
  // the victim's input, so shrinking zeroes (almost) everything else.
  const auto rep = harness::load_sync_repro(fuzzed.repro_path);
  EXPECT_EQ(rep.property, prop.name);
  EXPECT_EQ(rep.experiment.strategy, workload::SyncStrategy::kBadChainRelay);
  EXPECT_LE(nonzero_coords(rep.experiment.honest_inputs), 2u);
  EXPECT_GE(nonzero_coords(rep.experiment.honest_inputs), 1u);
  // Deterministic run: the stored checkpoints are non-trivial.
  EXPECT_GT(rep.schedule.size(), 0u);

  // RBVC_REPLAY re-executes the counterexample byte-for-byte.
  ::setenv("RBVC_REPLAY", fuzzed.repro_path.c_str(), 1);
  const auto replayed = harness::check_property<harness::SyncRunner>(prop);
  EXPECT_TRUE(replayed.replayed_from_file);
  EXPECT_FALSE(replayed.passed);
  EXPECT_EQ(replayed.episodes, 1u);
  // The failure is the oracle's verdict, not a divergence report.
  EXPECT_EQ(replayed.failure.find("divergence"), std::string::npos)
      << replayed.failure;
}

TEST_F(HarnessSyncPropertyTest, MutatedCheckpointLogIsDetected) {
  ::unsetenv("RBVC_REPLAY");
  ::unsetenv("RBVC_FUZZ_EPISODES");
  const auto prop = planted_bad_chain_property();
  const auto fuzzed = harness::check_property<harness::SyncRunner>(prop);
  ASSERT_FALSE(fuzzed.passed) << harness::describe(fuzzed);

  // Tamper with the recorded round checkpoints and replay: the re-run no
  // longer matches, and the harness must say so instead of trusting it.
  auto rep = harness::load_sync_repro(fuzzed.repro_path);
  ASSERT_GT(rep.schedule.size(), 0u);
  rep.schedule.set_value(0, rep.schedule.entries()[0].value + 1);
  const std::string mutated =
      ::testing::TempDir() + "/rbvc_repro_mutated_sync.txt";
  harness::write_repro(mutated, rep);

  ::setenv("RBVC_REPLAY", mutated.c_str(), 1);
  const auto replayed = harness::check_property<harness::SyncRunner>(prop);
  EXPECT_TRUE(replayed.replayed_from_file);
  EXPECT_FALSE(replayed.passed);
  EXPECT_NE(replayed.failure.find("divergence"), std::string::npos)
      << replayed.failure;
}

}  // namespace
}  // namespace rbvc
