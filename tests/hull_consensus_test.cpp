// Tests for 2-D Convex Hull Consensus (Tseng-Vaidya [16] baseline).
#include "consensus/hull_consensus.h"

#include <gtest/gtest.h>

#include "consensus/verifier.h"
#include "workload/byzantine_strategies.h"
#include "workload/generators.h"

namespace rbvc::consensus {
namespace {

TEST(GammaPolygonTest, MatchesLpOracleOnRandomInputs) {
  // The polygon is non-empty exactly when the LP says Gamma is non-empty,
  // and its vertices lie in every drop-f hull.
  Rng rng(811);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 4 + rep % 4;
    const auto s = workload::gaussian_cloud(rng, n, 2);
    const auto poly = gamma_polygon(s, 1);
    const auto lp = gamma_point(s, 1);
    EXPECT_EQ(poly.has_value(), lp.has_value()) << "rep " << rep;
    if (!poly) continue;
    for (const Point2& v : *poly) {
      EXPECT_LE(gamma_excess({v.x, v.y}, s, 1, 2.0), 1e-6) << "rep " << rep;
    }
  }
}

TEST(GammaPolygonTest, EmptyBelowBound) {
  // 3 = (d+1)f points in general position: Gamma empty (2-D Tverberg
  // tightness).
  const std::vector<Vec> tri = {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}};
  EXPECT_FALSE(gamma_polygon(tri, 1).has_value());
}

TEST(GammaPolygonTest, FullPolygonAtGenerousN) {
  Rng rng(821);
  const auto s = workload::gaussian_cloud(rng, 8, 2);
  const auto poly = gamma_polygon(s, 1);
  ASSERT_TRUE(poly.has_value());
  EXPECT_GE(poly->size(), 3u);  // generically a genuine polygon
  EXPECT_GT(polygon_area(*poly), 0.0);
}

TEST(GammaPolygonTest, ContainedInEveryHonestHull) {
  // Whichever f processes are faulty, the polygon sits inside the honest
  // hull -- the hull-validity condition of convex hull consensus.
  Rng rng(823);
  const std::size_t n = 6, f = 1;
  const auto s = workload::gaussian_cloud(rng, n, 2);
  const auto poly = gamma_polygon(s, f);
  ASSERT_TRUE(poly.has_value());
  for (std::size_t faulty = 0; faulty < n; ++faulty) {
    std::vector<Vec> honest;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != faulty) honest.push_back(s[i]);
    }
    EXPECT_TRUE(polygon_in_hull(*poly, honest, 1e-6)) << "faulty " << faulty;
  }
}

TEST(HullConsensusTest, EndToEndAgreementOnPolygon) {
  const std::size_t n = 5, f = 1;
  Rng rng(827);
  sim::SyncEngine engine;
  std::vector<Vec> inputs = workload::gaussian_cloud(rng, n - 1, 2);
  for (std::size_t id = 0; id < n; ++id) {
    if (id == 2) {
      engine.add(workload::make_sync_byzantine(
          workload::SyncStrategy::kEquivocate, n, f, id, 2, 31));
    } else {
      const std::size_t idx = id < 2 ? id : id - 1;
      engine.add(std::make_unique<HullConsensusProcess>(
          n, f, id, inputs[idx], zeros(2)));
    }
  }
  const auto stats =
      engine.run(protocols::EigConsensusProcess::rounds_needed(f));
  ASSERT_TRUE(stats.all_decided);

  const HullDecision* first = nullptr;
  for (std::size_t id = 0; id < n; ++id) {
    if (id == 2) continue;
    const auto& p = dynamic_cast<HullConsensusProcess&>(engine.process(id));
    const auto& poly = p.hull_decision();
    ASSERT_FALSE(poly.empty());
    if (!first) {
      first = &poly;
      // Validity: polygon inside the honest inputs' hull.
      EXPECT_TRUE(polygon_in_hull(poly, inputs, 1e-6));
      continue;
    }
    // Agreement: identical polygon at every correct process (bitwise).
    ASSERT_EQ(poly.size(), first->size());
    for (std::size_t v = 0; v < poly.size(); ++v) {
      EXPECT_EQ(poly[v].x, (*first)[v].x);
      EXPECT_EQ(poly[v].y, (*first)[v].y);
    }
  }
}

TEST(HullConsensusTest, FailsCleanlyBelowBound) {
  // n = 3 = 3f with a simplex: the decision rule reports infeasibility.
  const std::vector<Vec> tri = {{0.0, 0.0}, {4.0, 0.0}, {0.0, 4.0}};
  sim::SyncEngine engine;
  // Only the decision function matters here; call it directly.
  HullConsensusProcess p(4, 1, 0, tri[0], zeros(2));
  (void)p;  // construction is fine; infeasibility surfaces via gamma_polygon
  EXPECT_FALSE(gamma_polygon(tri, 1).has_value());
}

TEST(HullConsensusTest, PolygonShrinksWithF) {
  // More tolerated faults -> smaller safe polygon (monotone in f).
  Rng rng(829);
  const auto s = workload::gaussian_cloud(rng, 9, 2);
  const auto p1 = gamma_polygon(s, 1);
  const auto p2 = gamma_polygon(s, 2);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  EXPECT_LT(polygon_area(*p2), polygon_area(*p1) + 1e-12);
}

}  // namespace
}  // namespace rbvc::consensus
