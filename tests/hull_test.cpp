#include "geometry/hull.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

const std::vector<Vec> kSquare = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};

TEST(HullTest, MembershipBasics) {
  EXPECT_TRUE(in_hull({0.5, 0.5}, kSquare));
  EXPECT_TRUE(in_hull({0.0, 0.0}, kSquare));   // vertex
  EXPECT_TRUE(in_hull({0.5, 0.0}, kSquare));   // edge
  EXPECT_FALSE(in_hull({1.5, 0.5}, kSquare));
  EXPECT_FALSE(in_hull({-0.01, 0.5}, kSquare));
}

TEST(HullTest, SinglePointHull) {
  const std::vector<Vec> single = {{2.0, 3.0}};
  EXPECT_TRUE(in_hull({2.0, 3.0}, single));
  EXPECT_FALSE(in_hull({2.0, 3.1}, single));
}

TEST(HullTest, CoefficientsReconstructPoint) {
  const auto c = hull_coefficients({0.25, 0.75}, kSquare);
  ASSERT_TRUE(c.has_value());
  Vec recon = zeros(2);
  double sum = 0.0;
  for (std::size_t i = 0; i < kSquare.size(); ++i) {
    axpy((*c)[i], kSquare[i], recon);
    sum += (*c)[i];
    EXPECT_GE((*c)[i], -1e-9);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_TRUE(approx_equal(recon, {0.25, 0.75}, 1e-8));
}

TEST(HullTest, DimensionMismatchThrows) {
  EXPECT_THROW(in_hull({0.5}, kSquare), invalid_argument);
  EXPECT_THROW(in_hull({0.5, 0.5}, {}), invalid_argument);
}

TEST(HullTest, IntersectionOfOverlappingTriangles) {
  const std::vector<Vec> t1 = {{0, 0}, {2, 0}, {0, 2}};
  const std::vector<Vec> t2 = {{1, 1}, {3, 1}, {1, 3}};
  const auto p = hull_intersection_point(std::vector<PointView>{t1, t2});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(in_hull(*p, t1, 1e-7));
  EXPECT_TRUE(in_hull(*p, t2, 1e-7));
}

TEST(HullTest, IntersectionEmptyWhenDisjoint) {
  const std::vector<Vec> t1 = {{0, 0}, {1, 0}, {0, 1}};
  const std::vector<Vec> t2 = {{5, 5}, {6, 5}, {5, 6}};
  EXPECT_FALSE(hulls_intersect(std::vector<PointView>{t1, t2}));
}

TEST(HullTest, IntersectionAtSinglePoint) {
  // Two segments crossing at exactly (1, 1).
  const std::vector<Vec> s1 = {{0, 0}, {2, 2}};
  const std::vector<Vec> s2 = {{0, 2}, {2, 0}};
  const auto p = hull_intersection_point(std::vector<PointView>{s1, s2});
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(approx_equal(*p, {1.0, 1.0}, 1e-7));
}

TEST(HullTest, IntersectionDeterministic) {
  const std::vector<Vec> t1 = {{0, 0}, {2, 0}, {0, 2}};
  const std::vector<Vec> t2 = {{1, 0}, {3, 0}, {1, 2}};
  const auto p1 = hull_intersection_point(std::vector<PointView>{t1, t2});
  const auto p2 = hull_intersection_point(std::vector<PointView>{t1, t2});
  ASSERT_TRUE(p1 && p2);
  EXPECT_EQ(*p1, *p2);  // bitwise identical: agreement depends on this
}

TEST(HullTest, SupportFunction) {
  EXPECT_DOUBLE_EQ(support({1.0, 0.0}, kSquare), 1.0);
  EXPECT_DOUBLE_EQ(support({-1.0, 0.0}, kSquare), 0.0);
  EXPECT_DOUBLE_EQ(support({1.0, 1.0}, kSquare), 2.0);
}

TEST(HullTest, RandomPointsInsideByConstruction) {
  Rng rng(3);
  for (int rep = 0; rep < 20; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 6, 4);
    // A random convex combination must be inside.
    Vec w(6);
    double sum = 0.0;
    for (double& v : w) {
      v = rng.uniform(0.0, 1.0);
      sum += v;
    }
    Vec p = zeros(4);
    for (std::size_t i = 0; i < 6; ++i) axpy(w[i] / sum, pts[i], p);
    EXPECT_TRUE(in_hull(p, pts, 1e-7)) << "rep " << rep;
    // A point beyond the farthest vertex along a random direction is not.
    Vec dir = rng.normal_vec(4);
    const double s = support(dir, pts);
    Vec outside = scale((s + 1.0) / dot(dir, dir), dir);
    if (dot(dir, outside) > s + 1e-6) {
      EXPECT_FALSE(in_hull(outside, pts, 1e-9));
    }
  }
}

}  // namespace
}  // namespace rbvc
