// Cross-module integration: the full stack (simulator -> broadcast ->
// geometry -> decision -> verification) exercised on shared scenarios, plus
// the feasibility-frontier story the paper's Section 1 tells.
#include <gtest/gtest.h>

#include "consensus/algo_relaxed.h"
#include "consensus/exact_bvc.h"
#include "consensus/k_relaxed.h"
#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc {
namespace {

TEST(IntegrationTest, ThreeAlgorithmsOnOneScenario) {
  // d = 3, f = 1. Exact BVC needs n = 5; ALGO and 1-relaxed work at n = 4.
  Rng rng(701);
  const auto inputs5 = workload::gaussian_cloud(rng, 4, 3);

  // Exact BVC at n = 5.
  workload::SyncExperiment exact;
  exact.n = 5;
  exact.f = 1;
  exact.honest_inputs = inputs5;
  exact.byzantine_ids = {4};
  exact.strategy = workload::SyncStrategy::kEquivocate;
  exact.decision = consensus::exact_bvc_decision(1);
  const auto exact_out = workload::run_sync_experiment(exact);
  ASSERT_FALSE(exact_out.decision_failed);
  EXPECT_TRUE(check_exact_validity(exact_out.decisions,
                                   exact_out.honest_inputs, 1e-6));

  // ALGO at n = 4 (one process fewer) with the same honest inputs minus one.
  workload::SyncExperiment algo;
  algo.n = 4;
  algo.f = 1;
  algo.honest_inputs = {inputs5[0], inputs5[1], inputs5[2]};
  algo.byzantine_ids = {3};
  algo.strategy = workload::SyncStrategy::kEquivocate;
  algo.decision = consensus::algo_decision(1);
  const auto algo_out = workload::run_sync_experiment(algo);
  ASSERT_FALSE(algo_out.decision_failed);
  EXPECT_TRUE(check_agreement(algo_out.decisions).identical);
  const double budget = input_dependent_delta(algo_out.honest_inputs, 1.0);
  EXPECT_LT(delta_p_validity_excess(algo_out.decisions,
                                    algo_out.honest_inputs, budget, 2.0),
            1e-6);

  // 1-relaxed at n = 4.
  workload::SyncExperiment k1 = algo;
  k1.decision = consensus::k_relaxed_decision(1, 1);
  const auto k1_out = workload::run_sync_experiment(k1);
  ASSERT_FALSE(k1_out.decision_failed);
  EXPECT_TRUE(check_k_validity(k1_out.decisions, k1_out.honest_inputs, 1,
                               1e-6));
}

TEST(IntegrationTest, FrontierStory) {
  // The paper's Section 1 summary as a feasibility matrix for d = 3, f = 1:
  //   n = 4: exact BVC can fail; ALGO succeeds with bounded delta.
  //   n = 5: everything succeeds with delta = 0.
  Rng rng(709);
  const auto simplex = workload::random_simplex(rng, 3);

  // n = 4: the honest inputs themselves form a simplex; with the Byzantine
  // silent (default 0 input), exact BVC's Gamma may be empty.
  workload::SyncExperiment e4;
  e4.n = 4;
  e4.f = 1;
  e4.honest_inputs = {simplex[0], simplex[1], simplex[2]};
  e4.byzantine_ids = {3};
  e4.strategy = workload::SyncStrategy::kOutlierInput;
  e4.seed = 42;
  e4.decision = consensus::exact_bvc_decision(1);
  const auto out4 = workload::run_sync_experiment(e4);
  // ALGO on the identical scenario succeeds regardless.
  e4.decision = consensus::algo_decision(1);
  const auto out4algo = workload::run_sync_experiment(e4);
  ASSERT_FALSE(out4algo.decision_failed);
  EXPECT_TRUE(check_agreement(out4algo.decisions).identical);
  // If exact BVC happened to fail, that demonstrates the gap; if not, the
  // adversarial input wasn't extreme enough -- either way ALGO's bound held.
  const double budget = input_dependent_delta(out4algo.honest_inputs, 1.0);
  EXPECT_LT(delta_p_validity_excess(out4algo.decisions,
                                    out4algo.honest_inputs, budget, 2.0),
            1e-6);
  (void)out4;

  // n = 5 random inputs: exact BVC succeeds and its delta is 0.
  workload::SyncExperiment e5;
  e5.n = 5;
  e5.f = 1;
  e5.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
  e5.byzantine_ids = {2};
  e5.strategy = workload::SyncStrategy::kOutlierInput;
  e5.decision = consensus::exact_bvc_decision(1);
  const auto out5 = workload::run_sync_experiment(e5);
  ASSERT_FALSE(out5.decision_failed);
  EXPECT_TRUE(check_exact_validity(out5.decisions, out5.honest_inputs, 1e-6));
}

TEST(IntegrationTest, AgreementIsBitwiseAcrossProcesses) {
  // The decision pipeline is deterministic end to end: all correct
  // processes compute literally identical doubles.
  Rng rng(719);
  workload::SyncExperiment e;
  e.n = 6;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 5, 4);
  e.byzantine_ids = {3};
  e.strategy = workload::SyncStrategy::kLyingRelay;
  e.decision = consensus::algo_decision(1);
  const auto out = workload::run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  for (std::size_t i = 1; i < out.decisions.size(); ++i) {
    EXPECT_EQ(out.decisions[i], out.decisions[0]);  // bitwise
  }
}

TEST(IntegrationTest, RepeatedRunsAreReproducible) {
  Rng rng(727);
  workload::SyncExperiment e;
  e.n = 5;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 4, 3);
  e.byzantine_ids = {1};
  e.strategy = workload::SyncStrategy::kLyingRelay;
  e.decision = consensus::algo_decision(1);
  e.seed = 1234;
  const auto a = workload::run_sync_experiment(e);
  const auto b = workload::run_sync_experiment(e);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i], b.decisions[i]);
  }
}

TEST(IntegrationTest, MessageCostScalesWithF) {
  // f+2 rounds and EIG relays: message count grows sharply with f; record
  // the trend as a regression guard.
  Rng rng(733);
  std::size_t prev = 0;
  for (std::size_t f : {1u, 2u}) {
    workload::SyncExperiment e;
    e.n = 3 * f + 1;
    e.f = f;
    e.honest_inputs =
        workload::gaussian_cloud(rng, e.n, 2);
    e.byzantine_ids = {};
    e.decision = consensus::algo_decision(f);
    const auto out = workload::run_sync_experiment(e);
    EXPECT_GT(out.stats.messages, prev);
    prev = out.stats.messages;
  }
}

}  // namespace
}  // namespace rbvc
