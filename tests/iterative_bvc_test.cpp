// Tests for iterative approximate BVC (related-work model, Vaidya [18]).
#include "consensus/iterative_bvc.h"

#include <gtest/gtest.h>

#include "consensus/verifier.h"
#include "geometry/hull.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc::consensus {
namespace {

// Byzantine iterative participant: sends a different random value to every
// recipient, every round (the model's worst behavior).
class IterEquivocator final : public IterativeBvcProcess {
 public:
  IterEquivocator(Params prm, sim::ProcessId self, std::size_t d,
                  std::uint64_t seed, double magnitude)
      : IterativeBvcProcess(prm, self, Vec(d, 0.0)), rng_(seed),
        magnitude_(magnitude), d_(d) {}

 protected:
  Vec value_for(sim::ProcessId, std::size_t) override {
    return scale(magnitude_, rng_.normal_vec(d_));
  }

 private:
  Rng rng_;
  double magnitude_;
  std::size_t d_;
};

struct Outcome {
  std::vector<Vec> decisions;
  std::vector<Vec> honest_inputs;
  std::vector<std::vector<Vec>> histories;
};

Outcome run(std::size_t n, std::size_t f, std::size_t d, std::size_t rounds,
            std::size_t byz_count, std::uint64_t seed) {
  Rng rng(seed);
  IterativeBvcProcess::Params prm;
  prm.n = n;
  prm.f = f;
  prm.rounds = rounds;
  sim::SyncEngine engine;
  Outcome out;
  std::vector<sim::ProcessId> correct;
  for (std::size_t id = 0; id < n; ++id) {
    if (id < byz_count) {
      engine.add(std::make_unique<IterEquivocator>(prm, id, d,
                                                   rng.next_u64(), 20.0));
    } else {
      out.honest_inputs.push_back(rng.normal_vec(d));
      engine.add(std::make_unique<IterativeBvcProcess>(
          prm, id, out.honest_inputs.back()));
      correct.push_back(id);
    }
  }
  engine.run(rounds + 2);
  for (auto id : correct) {
    auto& p = dynamic_cast<IterativeBvcProcess&>(engine.process(id));
    out.decisions.push_back(p.decision());
    out.histories.push_back(p.history());
  }
  return out;
}

double spread(const std::vector<Vec>& vs) {
  return check_agreement(vs).max_pairwise_linf;
}

TEST(IterativeBvcTest, FaultFreeConvergesToHull) {
  const auto out = run(5, 1, 3, 12, 0, 211);
  ASSERT_EQ(out.decisions.size(), 5u);
  EXPECT_LT(spread(out.decisions), 1e-3);
  EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-5));
}

TEST(IterativeBvcTest, ToleratesEquivocatingByzantine) {
  // n = (d+1)f + 1 = 5 for d = 3, f = 1; one per-recipient equivocator.
  const auto out = run(5, 1, 3, 14, 1, 223);
  ASSERT_EQ(out.decisions.size(), 4u);
  EXPECT_LT(spread(out.decisions), 0.05);
  // Validity: every decision inside the honest INITIAL hull (safe-area
  // updates never leave it).
  EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-4));
}

TEST(IterativeBvcTest, SpreadContractsMonotonically) {
  const auto out = run(6, 1, 2, 10, 1, 227);
  // Reconstruct per-round spreads from the histories.
  const std::size_t rounds = out.histories.front().size();
  double prev = 1e300;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::vector<Vec> vals;
    for (const auto& h : out.histories) vals.push_back(h[r]);
    const double s = spread(vals);
    EXPECT_LE(s, prev * 1.02 + 1e-9) << "round " << r;  // no expansion
    prev = s;
  }
  EXPECT_LT(prev, 0.1);
}

TEST(IterativeBvcTest, ValidityHoldsEveryRound) {
  const auto out = run(5, 1, 3, 8, 1, 229);
  for (const auto& h : out.histories) {
    for (std::size_t r = 1; r < h.size(); ++r) {
      EXPECT_TRUE(in_hull(h[r], out.honest_inputs, 1e-4))
          << "round " << r;
    }
  }
}

TEST(IterativeBvcTest, HoldsValueWhenSafeAreaEmpty) {
  // Below the bound (n = 4 = (d+1)f with d = 3) the equivocator can make
  // Gamma empty; processes then hold, so validity still cannot break --
  // only agreement suffers. (This mirrors Thm 2: the bound is necessary.)
  const auto out = run(4, 1, 3, 8, 1, 233);
  EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-4));
}

TEST(IterativeBvcTest, ValidatesParams) {
  IterativeBvcProcess::Params bad;
  bad.n = 1;
  EXPECT_THROW(IterativeBvcProcess(bad, 0, {1.0}), invalid_argument);
  IterativeBvcProcess::Params bad2;
  bad2.n = 4;
  bad2.rounds = 0;
  EXPECT_THROW(IterativeBvcProcess(bad2, 0, {1.0}), invalid_argument);
}

}  // namespace
}  // namespace rbvc::consensus
