#include "consensus/k_relaxed.h"

#include <gtest/gtest.h>

#include "consensus/exact_bvc.h"
#include "consensus/verifier.h"
#include "workload/adversarial_inputs.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc::consensus {
namespace {

TEST(KRelaxedTest, K1NeedsOnly3fPlus1) {
  // d = 5, f = 1, n = 4 = 3f+1 << (d+1)f+1 = 7: 1-relaxed consensus works.
  Rng rng(439);
  workload::SyncExperiment e;
  e.n = 4;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 3, 5);
  e.byzantine_ids = {3};
  e.strategy = workload::SyncStrategy::kEquivocate;
  e.decision = k_relaxed_decision(1, 1);
  const auto out = run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  EXPECT_TRUE(check_k_validity(out.decisions, out.honest_inputs, 1, 1e-6));
}

TEST(KRelaxedTest, K2AtFullBound) {
  // n = (d+1)f + 1 = 5, d = 4... use d=4, n=5: k=2 solvable.
  Rng rng(443);
  workload::SyncExperiment e;
  e.n = 6;
  e.f = 1;
  e.honest_inputs = workload::gaussian_cloud(rng, 5, 4);
  e.byzantine_ids = {2};
  e.strategy = workload::SyncStrategy::kLyingRelay;
  e.decision = k_relaxed_decision(1, 2);
  const auto out = run_sync_experiment(e);
  ASSERT_FALSE(out.decision_failed);
  EXPECT_TRUE(check_agreement(out.decisions).identical);
  EXPECT_TRUE(check_k_validity(out.decisions, out.honest_inputs, 2, 1e-6));
  // Gamma was non-empty, so the stronger exact validity holds too.
  EXPECT_TRUE(check_exact_validity(out.decisions, out.honest_inputs, 1e-6));
}

TEST(KRelaxedTest, DecisionPrefersGamma) {
  Rng rng(449);
  const auto s = workload::gaussian_cloud(rng, 6, 3);
  const Vec p = k_relaxed_decision(1, 2)(s);
  EXPECT_NEAR(gamma_excess(p, s, 1, 2.0), 0.0, 1e-6);
}

TEST(KRelaxedTest, FallsBackToPsiWhenGammaEmpty) {
  // A simplex has empty Gamma but may have non-empty Psi_k... for the
  // paper's Thm 3 matrix Psi_2 is empty too, so the rule must throw there.
  const auto y = workload::thm3_inputs(3, 1.0, 0.5);
  EXPECT_THROW(k_relaxed_decision(1, 2)(y), infeasible_instance);
}

TEST(KRelaxedTest, K1WorksOnThm3Inputs) {
  // The same matrix is fine for k = 1 (per-coordinate median).
  const auto y = workload::thm3_inputs(3, 1.0, 0.5);
  const Vec p = k_relaxed_decision(1, 1)(y);
  for (const auto& t : drop_f_subsets(y, 1)) {
    EXPECT_TRUE(in_k_relaxed_hull(p, t, 1, 1e-9));
  }
}

TEST(KRelaxedTest, ValidatesK) {
  EXPECT_THROW(k_relaxed_decision(1, 0), invalid_argument);
}

TEST(KRelaxedTest, KdMatchesExactBvcFeasibility) {
  // k = d degenerates to the original problem: same feasibility behavior.
  Rng rng(457);
  const auto good = workload::gaussian_cloud(rng, 6, 3);
  EXPECT_NO_THROW(k_relaxed_decision(1, 3)(good));
  const auto bad = workload::thm3_inputs(3, 1.0, 0.5);
  EXPECT_THROW(k_relaxed_decision(1, 3)(bad), infeasible_instance);
}

}  // namespace
}  // namespace rbvc::consensus
