// Randomized cross-checks for the LP core: the dense simplex is the
// foundation of every hull oracle, so it gets an independent referee --
// brute-force vertex enumeration on tiny instances, plus invariance checks
// (scaling, row permutation) on larger ones.
#include <gtest/gtest.h>

#include <cmath>

#include "lp/model.h"
#include "sim/rng.h"

namespace rbvc::lp {
namespace {

// Brute-force optimum of min c.x over {x >= 0 : A x <= b} in 2 variables:
// enumerate all candidate vertices (intersections of constraint/axis pairs)
// and take the best feasible one. Returns nullopt when the feasible region
// is empty or unbounded improvement is detected (by probing rays).
std::optional<double> brute_force_2d(const std::vector<Vec>& rows,
                                     const Vec& b, const Vec& c) {
  std::vector<Vec> lines = rows;  // a.x <= b
  std::vector<double> rhs(b.begin(), b.end());
  // Axes x >= 0 as -x <= 0.
  lines.push_back({-1.0, 0.0});
  rhs.push_back(0.0);
  lines.push_back({0.0, -1.0});
  rhs.push_back(0.0);

  auto feasible = [&](const Vec& x) {
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (dot(lines[i], x) > rhs[i] + 1e-7) return false;
    }
    return true;
  };

  std::optional<double> best;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (std::size_t j = i + 1; j < lines.size(); ++j) {
      const double det =
          lines[i][0] * lines[j][1] - lines[i][1] * lines[j][0];
      if (std::abs(det) < 1e-10) continue;
      const Vec x = {(rhs[i] * lines[j][1] - lines[i][1] * rhs[j]) / det,
                     (lines[i][0] * rhs[j] - rhs[i] * lines[j][0]) / det};
      if (!feasible(x)) continue;
      const double v = dot(c, x);
      if (!best || v < *best) best = v;
    }
  }
  return best;
}

TEST(LpFuzzTest, MatchesBruteForceOn2DPolytopes) {
  Rng rng(1409);
  int compared = 0;
  for (int rep = 0; rep < 60; ++rep) {
    // Random bounded-ish polytope: a few random halfplanes plus a box cap
    // so brute force's vertex set is the whole story.
    std::vector<Vec> rows;
    Vec b;
    for (int i = 0; i < 4; ++i) {
      rows.push_back(rng.normal_vec(2));
      b.push_back(rng.uniform(0.5, 3.0));
    }
    rows.push_back({1.0, 0.0});
    b.push_back(5.0);
    rows.push_back({0.0, 1.0});
    b.push_back(5.0);
    Vec c = rng.normal_vec(2);

    Model m;
    const auto x0 = m.add_vars(2);
    m.set_objective_coeff(x0, c[0]);
    m.set_objective_coeff(x0 + 1, c[1]);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      m.add_constraint({{x0, rows[i][0]}, {x0 + 1, rows[i][1]}}, Rel::kLe,
                       b[i]);
    }
    const auto sol = m.solve();
    const auto ref = brute_force_2d(rows, b, c);
    // x = 0 is always feasible here (all rhs >= 0), so both must succeed.
    ASSERT_EQ(sol.status, Status::kOptimal) << "rep " << rep;
    ASSERT_TRUE(ref.has_value()) << "rep " << rep;
    EXPECT_NEAR(sol.objective, *ref, 1e-6) << "rep " << rep;
    ++compared;
  }
  EXPECT_EQ(compared, 60);
}

TEST(LpFuzzTest, ScalingInvariance) {
  // Scaling A, b by a positive constant must not change the argmin; scaling
  // c scales the objective linearly.
  Rng rng(1423);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t nv = 3, mc = 3;
    std::vector<std::vector<Model::Term>> rows(mc);
    Vec rhs(mc);
    Vec obj(nv);
    for (auto& v : obj) v = rng.normal();
    std::vector<std::vector<double>> coef(mc, std::vector<double>(nv));
    for (std::size_t i = 0; i < mc; ++i) {
      rhs[i] = rng.uniform(1.0, 4.0);
      for (std::size_t j = 0; j < nv; ++j) coef[i][j] = rng.normal();
    }
    auto build = [&](double s) {
      Model m;
      const auto x0 = m.add_vars(nv);
      for (std::size_t j = 0; j < nv; ++j) {
        m.set_objective_coeff(x0 + j, obj[j]);
      }
      for (std::size_t i = 0; i < mc; ++i) {
        std::vector<Model::Term> terms;
        for (std::size_t j = 0; j < nv; ++j) {
          terms.push_back({x0 + j, s * coef[i][j]});
        }
        m.add_constraint(terms, Rel::kLe, s * rhs[i]);
      }
      return m.solve();
    };
    const auto a = build(1.0);
    const auto b = build(37.5);
    ASSERT_EQ(a.status, b.status) << "rep " << rep;
    if (a.status == Status::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "rep " << rep;
    }
  }
}

TEST(LpFuzzTest, RowPermutationInvariance) {
  Rng rng(1427);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t nv = 3, mc = 4;
    std::vector<Vec> coef;
    Vec rhs, obj = rng.normal_vec(nv);
    for (std::size_t i = 0; i < mc; ++i) {
      coef.push_back(rng.normal_vec(nv));
      rhs.push_back(rng.uniform(0.5, 3.0));
    }
    std::vector<std::size_t> order(mc);
    for (std::size_t i = 0; i < mc; ++i) order[i] = i;
    auto build = [&](const std::vector<std::size_t>& ord) {
      Model m;
      const auto x0 = m.add_vars(nv);
      for (std::size_t j = 0; j < nv; ++j) {
        m.set_objective_coeff(x0 + j, obj[j]);
      }
      for (std::size_t i : ord) {
        std::vector<Model::Term> terms;
        for (std::size_t j = 0; j < nv; ++j) {
          terms.push_back({x0 + j, coef[i][j]});
        }
        m.add_constraint(terms, Rel::kLe, rhs[i]);
      }
      return m.solve();
    };
    const auto a = build(order);
    rng.shuffle(order);
    const auto b = build(order);
    ASSERT_EQ(a.status, b.status) << "rep " << rep;
    if (a.status == Status::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-7) << "rep " << rep;
    }
  }
}

}  // namespace
}  // namespace rbvc::lp
