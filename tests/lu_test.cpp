#include "linalg/lu.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace rbvc {
namespace {

TEST(LuTest, SolvesSmallSystem) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  const auto x = solve(a, {5.0, 10.0});
  ASSERT_TRUE(x.has_value());
  EXPECT_TRUE(approx_equal(*x, {1.0, 3.0}, 1e-10));
}

TEST(LuTest, DetectsSingular) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_FALSE(solve(a, {1.0, 1.0}).has_value());
  EXPECT_FALSE(inverse(a).has_value());
  EXPECT_DOUBLE_EQ(LU(a).det(), 0.0);
}

TEST(LuTest, Determinant) {
  const Matrix a = Matrix::from_rows({{2.0, 0.0}, {0.0, 3.0}});
  EXPECT_NEAR(LU(a).det(), 6.0, 1e-12);
  // Permutation flips the sign.
  const Matrix p = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(LU(p).det(), -1.0, 1e-12);
}

TEST(LuTest, InverseRoundTrip) {
  Rng rng(123);
  for (std::size_t d : {2u, 3u, 5u, 8u}) {
    Matrix a(d, d);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) a(r, c) = rng.normal();
      a(r, r) += 3.0;  // diagonal dominance keeps it well-conditioned
    }
    const auto inv = inverse(a);
    ASSERT_TRUE(inv.has_value());
    const Matrix prod = a * *inv;
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) {
        EXPECT_NEAR(prod(r, c), r == c ? 1.0 : 0.0, 1e-9);
      }
    }
  }
}

TEST(LuTest, SolveMatchesResidual) {
  Rng rng(7);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t d = 4;
    Matrix a(d, d);
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t c = 0; c < d; ++c) a(r, c) = rng.normal();
    }
    const Vec b = rng.normal_vec(d);
    const auto x = solve(a, b);
    if (!x) continue;  // singular draw: fine
    const Vec res = sub(a * *x, b);
    EXPECT_LT(norm2(res), 1e-8);
  }
}

TEST(LuTest, RequiresSquare) {
  EXPECT_THROW(LU(Matrix(2, 3)), invalid_argument);
}

TEST(LuTest, SolveGuardsSize) {
  const Matrix a = Matrix::identity(2);
  LU lu(a);
  EXPECT_THROW(lu.solve({1.0, 2.0, 3.0}), invalid_argument);
}

TEST(RankTest, FullAndDeficient) {
  EXPECT_EQ(rank(Matrix::identity(4)), 4u);
  const Matrix r1 = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}});
  EXPECT_EQ(rank(r1), 1u);
  const Matrix wide = Matrix::from_rows({{1.0, 0.0, 1.0}, {0.0, 1.0, 1.0}});
  EXPECT_EQ(rank(wide), 2u);
  EXPECT_EQ(rank(Matrix(3, 3, 0.0)), 0u);
}

TEST(RankTest, ScalesWithMagnitude) {
  // A tiny but full-rank matrix should not be misjudged as singular.
  Matrix a = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) a(r, r) = 1e-5;
  EXPECT_EQ(rank(a), 3u);
  const auto inv = inverse(a);
  ASSERT_TRUE(inv.has_value());
  EXPECT_NEAR((*inv)(0, 0), 1e5, 1.0);
}

}  // namespace
}  // namespace rbvc
