#include "linalg/matrix.h"

#include <gtest/gtest.h>

namespace rbvc {
namespace {

TEST(MatrixTest, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(MatrixTest, FromColumnsAndRows) {
  const Matrix c = Matrix::from_columns({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 3.0);
  const Matrix r = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(r(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 3.0);
  EXPECT_THROW(Matrix::from_columns({{1.0}, {1.0, 2.0}}), invalid_argument);
}

TEST(MatrixTest, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, RowColAccessors) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  EXPECT_EQ(m.row(1), (Vec{4.0, 5.0, 6.0}));
  EXPECT_EQ(m.col(2), (Vec{3.0, 6.0}));
  Matrix w = m;
  w.set_row(0, {7.0, 8.0, 9.0});
  EXPECT_EQ(w.row(0), (Vec{7.0, 8.0, 9.0}));
  w.set_col(1, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(w(0, 1), 0.0);
  EXPECT_THROW(m.row(5), invalid_argument);
}

TEST(MatrixTest, Transpose) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MatVec) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(m * Vec({1.0, 1.0}), (Vec{3.0, 7.0}));
  EXPECT_THROW(m * Vec({1.0}), invalid_argument);
}

TEST(MatrixTest, MatMul) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  const Matrix ab = a * b;
  EXPECT_DOUBLE_EQ(ab(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(ab(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ab(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(ab(1, 1), 3.0);
}

TEST(MatrixTest, MaxAbs) {
  const Matrix m = Matrix::from_rows({{1.0, -7.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(m.max_abs(), 7.0);
  EXPECT_DOUBLE_EQ(Matrix().max_abs(), 0.0);
}

}  // namespace
}  // namespace rbvc
