// Boundary-instance suites for exhaustive exploration (ctest label: mc).
//
// The paper's k-relaxed feasibility boundary (Thm 3) is n = (d+1)f + 1
// for 2 <= k <= d. With k = d = 2, f = 1 that is n = 4: the sync suite
// *proves* agreement and validity there by exhausting every adversary
// decision of a choice-driven equivocator (the drop-f hulls of any four
// planar points share a point, so the rule always decides), and at
// n - 1 = 3 finds the planted violation on every branch -- three
// non-collinear points leave Psi_k(S) empty, the decision rule throws
// infeasible_instance, and a replayable schema-v3 repro is emitted.
// (d = 2 rather than the smallest possible dimension also keeps both
// instances inside Dolev-Strong's own n >= f + 2 feasibility region, so
// the only infeasibility in play is the paper's.) The RBC suites
// exercise the async engine: a sleep-set reduction ratio check on a
// commuting-delivery instance (the ISSUE's >= 5x bar, asserted both on
// ExploreStats and on the mc.states.explored counter), and a planted
// equivocation under weakened quorums that exhaustive search must find.
#include <gtest/gtest.h>

#include <string>

#include "harness/exhaustive.h"
#include "harness/property.h"
#include "obs/metrics.h"
#include "workload/runner.h"

namespace rbvc {
namespace {

// --- Sync model: the n = (d+1)f+1 boundary -------------------------------

/// d = 2, f = 1 boundary instance: one choice-driven equivocator over the
/// Dolev-Strong substrate, planar honest inputs. The adversary picks one
/// of two signed values per recipient, so the decision tree has exactly
/// 2^(n-1) leaves and no scheduler picks.
workload::SyncExperiment sync_boundary_experiment(std::size_t n) {
  workload::SyncExperiment e;
  e.n = n;
  e.f = 1;
  e.backend = workload::SyncBackend::kDolevStrong;
  e.strategy = workload::SyncStrategy::kChoiceEquivocate;
  e.rule = workload::SyncRule::kKRelaxed;
  e.k = 2;
  e.byzantine_ids = {n - 1};
  // Non-collinear with the origin (the substrate's default value), so the
  // below-boundary instance is infeasible on the equivocating branches too.
  const std::vector<Vec> cloud = {Vec{10.0, 0.0}, Vec{0.0, 10.0},
                                  Vec{0.0, 0.0}};
  e.honest_inputs.assign(cloud.begin(),
                         cloud.begin() + static_cast<std::ptrdiff_t>(n - 1));
  e.seed = 7;
  return e;
}

TEST(McBoundary, SyncProofAtFeasibilityBoundary) {
  harness::ExhaustiveProperty<harness::SyncRunner> prop;
  prop.name = "mc_sync_boundary_proof";
  prop.experiment = sync_boundary_experiment(4);  // n = (d+1)f + 1
  prop.oracle = harness::sync_decide_agree_valid_oracle(1e-9, 1.0);
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property_exhaustive(prop);
  EXPECT_TRUE(res.passed) << res.failure;
  EXPECT_TRUE(res.complete);
  EXPECT_EQ(res.stats.truncated_runs, 0u);  // sync runs never truncate
  // The equivocator faces three correct recipients, two values each.
  EXPECT_EQ(res.stats.runs, 8u);
  EXPECT_TRUE(res.repro_path.empty());
}

TEST(McBoundary, SyncViolationBelowBoundaryWithReplayableRepro) {
  harness::ExhaustiveProperty<harness::SyncRunner> prop;
  prop.name = "mc_sync_below_boundary";
  prop.experiment = sync_boundary_experiment(3);  // n - 1: infeasible
  prop.oracle = harness::sync_decide_agree_valid_oracle(1e-9, 1.0);
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property_exhaustive(prop);
  ASSERT_FALSE(res.passed);
  EXPECT_FALSE(res.failure.empty());
  EXPECT_FALSE(res.complete);  // stopped at the first violating path
  ASSERT_FALSE(res.repro_path.empty());

  // The repro is a standard schema-v3 file: the fuzz pipeline's loader
  // reads it back and its replay reproduces the recorded verdict.
  const auto info = harness::peek_repro_file(res.repro_path);
  EXPECT_EQ(info.version, 3);
  EXPECT_EQ(info.mode, harness::ReproMode::kSync);
  EXPECT_EQ(info.property, prop.name);
  const auto rep = harness::SyncRunner::load(res.repro_path);
  const std::string refail = harness::SyncRunner::replay(rep, prop.oracle);
  EXPECT_FALSE(refail.empty());
  EXPECT_EQ(refail.find("divergence"), std::string::npos) << refail;
}

// --- Async engine (Bracha RBC): POR ratio and a planted violation --------

/// Commuting-heavy proof instance: one broadcaster, one silent faulty
/// process, runs cut at 5 deliveries. Almost every pair of pending
/// deliveries targets distinct recipients, so sleep sets should collapse
/// most interleavings -- and the reduction compounds with depth.
workload::RbcExperiment rbc_por_experiment() {
  workload::RbcExperiment e;
  e.n = 4;
  e.f = 1;
  e.byzantine_ids = {3};
  e.strategy = workload::AsyncStrategy::kSilent;
  e.honest_inputs = {Vec{1.0}, Vec{2.0}, Vec{3.0}};
  e.broadcasters = {0};
  e.max_events = 5;
  e.seed = 11;
  return e;
}

TEST(McBoundary, SleepSetsBeatNaiveEnumerationFiveFold) {
  harness::ExhaustiveProperty<harness::RbcRunner> prop;
  prop.name = "mc_rbc_por_ratio";
  prop.experiment = rbc_por_experiment();
  prop.oracle = harness::rbc_safety_oracle();
  prop.repro_dir = ::testing::TempDir();

  obs::Counter& states_meter = obs::global().counter("mc.states.explored");

  prop.options.por = false;
  const std::uint64_t naive0 = states_meter.value();
  const auto naive = harness::check_property_exhaustive(prop);
  const std::uint64_t naive_metered = states_meter.value() - naive0;

  prop.options.por = true;
  const std::uint64_t por0 = states_meter.value();
  const auto reduced = harness::check_property_exhaustive(prop);
  const std::uint64_t por_metered = states_meter.value() - por0;

  ASSERT_TRUE(naive.passed) << naive.failure;
  ASSERT_TRUE(reduced.passed) << reduced.failure;
  EXPECT_TRUE(naive.complete);
  EXPECT_TRUE(reduced.complete);

  // The exported counter agrees with the in-band stats...
  EXPECT_EQ(naive_metered, naive.stats.states);
  EXPECT_EQ(por_metered, reduced.stats.states);
  // ...and reduction explores at least 5x fewer states (the ISSUE's bar).
  EXPECT_GE(naive.stats.states, 5 * reduced.stats.states)
      << "naive=" << naive.stats.states
      << " reduced=" << reduced.stats.states;
  EXPECT_GT(reduced.stats.sleep_skips, 0u);
}

/// Weakened-quorum instance: every vote threshold forced to 1, a silent
/// broadcaster set, and one equivocating source. A single echo then
/// suffices to deliver, so the intersection argument collapses and some
/// interleaving delivers different values at different correct processes.
workload::RbcExperiment rbc_planted_experiment() {
  workload::RbcExperiment e;
  e.n = 4;  // Bracha's own floor is n >= 3f + 1
  e.f = 1;
  e.byzantine_ids = {3};
  e.strategy = workload::AsyncStrategy::kEquivocate;
  e.honest_inputs = {Vec{1.0}, Vec{2.0}, Vec{3.0}};
  e.broadcasters = {};      // only the adversary broadcasts
  e.quorums = {1, 1, 1};    // protocol: echo 3, amplify 2, deliver 3
  e.max_events = 6;
  e.seed = 5;
  return e;
}

TEST(McBoundary, FindsPlantedRbcEquivocationAndReplaysIt) {
  harness::ExhaustiveProperty<harness::RbcRunner> prop;
  prop.name = "mc_rbc_planted_equivocation";
  prop.experiment = rbc_planted_experiment();
  prop.oracle = harness::rbc_safety_oracle();
  // Every 6-event run is truncated; the safety oracle is prefix-sound, so
  // judging truncated runs cannot raise false alarms.
  prop.judge_truncated = true;
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property_exhaustive(prop);
  ASSERT_FALSE(res.passed);
  EXPECT_NE(res.failure.find("equivocation"), std::string::npos)
      << res.failure;
  ASSERT_FALSE(res.repro_path.empty());
  EXPECT_GT(res.original_len, 0u);
  EXPECT_LE(res.shrunk_len, res.original_len);

  const auto rep = harness::RbcRunner::load(res.repro_path);
  EXPECT_EQ(rep.experiment.broadcasters, std::vector<std::size_t>{});
  const std::string refail = harness::RbcRunner::replay(rep, prop.oracle);
  EXPECT_FALSE(refail.empty());
}

TEST(McBoundary, SafetyHoldsUnderProtocolQuorums) {
  // Same adversary, protocol thresholds: the 6-event prefix space must be
  // clean -- equivocation cannot split deliveries when quorums intersect.
  harness::ExhaustiveProperty<harness::RbcRunner> prop;
  prop.name = "mc_rbc_protocol_quorums";
  prop.experiment = rbc_planted_experiment();
  prop.experiment.quorums = {};  // protocol values
  prop.oracle = harness::rbc_safety_oracle();
  prop.judge_truncated = true;
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property_exhaustive(prop);
  EXPECT_TRUE(res.passed) << res.failure;
  EXPECT_TRUE(res.complete);
}

// --- Dolev-Strong broadcast: choice enumeration through the DS runner ----

TEST(McBoundary, DsChoiceEquivocatorExhausted) {
  workload::BroadcastExperiment e;
  e.n = 3;
  e.f = 1;
  e.byzantine_ids = {2};
  e.strategy = workload::SyncStrategy::kChoiceEquivocate;
  e.honest_inputs = {Vec{0.0}, Vec{10.0}};
  e.seed = 3;

  harness::ExhaustiveProperty<harness::DsRunner> prop;
  prop.name = "mc_ds_choice_equivocator";
  prop.experiment = e;
  prop.oracle = harness::broadcast_agreement_oracle();
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property_exhaustive(prop);
  EXPECT_TRUE(res.passed) << res.failure;
  EXPECT_TRUE(res.complete);
  // Two recipients, two signed values each: the whole adversary space.
  EXPECT_EQ(res.stats.runs, 4u);
  EXPECT_EQ(res.stats.truncated_runs, 0u);
}

}  // namespace
}  // namespace rbvc
