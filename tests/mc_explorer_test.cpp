// Unit tests for the bounded exhaustive explorer (src/mc/explorer.h) on
// synthetic run functions: leaf counts on pure choice trees, witness paths,
// sleep-set reduction on commuting deliveries, prune soundness, caps, and
// the any-job-count determinism contract.
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mc/explorer.h"
#include "obs/metrics.h"

namespace rbvc::mc {
namespace {

// A run that makes `depth` binary choices and never fails: a full binary
// decision tree with 2^depth leaves.
RunFn binary_tree(std::size_t depth) {
  return [depth](ChoiceSource& src) {
    for (std::size_t i = 0; i < depth; ++i) (void)src.choose(2);
    return RunVerdict{};
  };
}

TEST(McExplorer, EnumeratesFullChoiceTree) {
  const ExploreResult r = explore(binary_tree(3));
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.stats.complete);
  EXPECT_EQ(r.stats.runs, 8u);
  // 7 decision points, 2 options each = 14 tree edges.
  EXPECT_EQ(r.stats.states, 14u);
  EXPECT_EQ(r.stats.sleep_skips, 0u);   // choices are never reduced
  EXPECT_EQ(r.stats.sleep_blocked, 0u);
  EXPECT_EQ(r.stats.max_depth, 3u);
}

TEST(McExplorer, NoDecisionPointsIsOneRun) {
  const ExploreResult r =
      explore([](ChoiceSource&) { return RunVerdict{}; });
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.stats.complete);
  EXPECT_EQ(r.stats.runs, 1u);
  EXPECT_EQ(r.stats.states, 0u);
}

TEST(McExplorer, ArityOneChainIsOneRun) {
  const ExploreResult r = explore([](ChoiceSource& src) {
    for (int i = 0; i < 4; ++i) EXPECT_EQ(src.choose(1), 0u);
    return RunVerdict{};
  });
  EXPECT_TRUE(r.stats.complete);
  EXPECT_EQ(r.stats.runs, 1u);
  EXPECT_EQ(r.stats.states, 4u);
}

// The violating path (1, 0, 1) must be found, reported with its failure
// message, and its witness must be exactly that decision sequence -- and
// identically so at every frontier width.
RunFn planted_violation() {
  return [](ChoiceSource& src) {
    const std::size_t a = src.choose(2);
    const std::size_t b = src.choose(2);
    const std::size_t c = src.choose(2);
    RunVerdict v;
    if (a == 1 && b == 0 && c == 1) v.failure = "planted";
    return v;
  };
}

TEST(McExplorer, FindsPlantedViolationWithWitnessPath) {
  const ExploreResult r = explore(planted_violation());
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.failure, "planted");
  EXPECT_FALSE(r.stats.complete);  // stopped at the violation
  ASSERT_EQ(r.witness.size(), 3u);
  EXPECT_EQ(r.witness.choice_count(), 3u);
  EXPECT_EQ(r.witness.entries()[0].value, 1u);
  EXPECT_EQ(r.witness.entries()[1].value, 0u);
  EXPECT_EQ(r.witness.entries()[2].value, 1u);
}

TEST(McExplorer, WitnessIsByteIdenticalAtAnyJobCount) {
  ExploreOptions serial;
  serial.jobs = 1;
  const ExploreResult r1 = explore(planted_violation(), serial);
  ExploreOptions wide;
  wide.jobs = 16;
  const ExploreResult r16 = explore(planted_violation(), wide);
  ASSERT_TRUE(r1.found);
  ASSERT_TRUE(r16.found);
  EXPECT_EQ(r1.witness.serialize(), r16.witness.serialize());
  EXPECT_EQ(r1.failure, r16.failure);
}

TEST(McExplorer, ExhaustiveStatsAreJobCountIndependent) {
  ExploreOptions serial;
  serial.jobs = 1;
  ExploreOptions wide;
  wide.jobs = 16;
  const ExploreResult r1 = explore(binary_tree(4), serial);
  const ExploreResult r16 = explore(binary_tree(4), wide);
  EXPECT_EQ(r1.stats.runs, r16.stats.runs);
  EXPECT_EQ(r1.stats.states, r16.stats.states);
  EXPECT_EQ(r1.stats.max_depth, r16.stats.max_depth);
  EXPECT_TRUE(r1.stats.complete);
  EXPECT_TRUE(r16.stats.complete);
}

// Simulates an async engine draining a pool of deliveries through pick():
// `tos[i]` is the recipient of initial message i; delivering a message
// erases it in place (the engine's contract) and appends nothing. With
// distinct recipients every interleaving commutes, so sleep sets must
// collapse the n! orders to a single complete run.
RunFn drain_pool(std::vector<sim::ProcessId> tos) {
  return [tos](ChoiceSource& src) {
    std::vector<sim::Message> pending;
    for (sim::ProcessId to : tos) {
      sim::Message m;
      m.to = to;
      pending.push_back(m);
    }
    while (!pending.empty()) {
      const std::size_t i = src.pick(pending);
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
    }
    return RunVerdict{};
  };
}

TEST(McExplorer, SleepSetsCollapseCommutingDeliveries) {
  ExploreOptions naive;
  naive.por = false;
  const ExploreResult full = explore(drain_pool({0, 1, 2}), naive);
  EXPECT_EQ(full.stats.runs, 6u);  // 3! interleavings
  EXPECT_TRUE(full.stats.complete);

  const ExploreResult por = explore(drain_pool({0, 1, 2}));
  EXPECT_EQ(por.stats.runs, 1u);  // all transpositions pruned
  EXPECT_TRUE(por.stats.complete);
  EXPECT_GT(por.stats.sleep_skips, 0u);
  EXPECT_GT(por.stats.sleep_blocked, 0u);
  EXPECT_LT(por.stats.states, full.stats.states);
}

TEST(McExplorer, DependentDeliveriesAreNotReduced) {
  // All three messages target the same recipient: nothing commutes, POR
  // must keep every interleaving.
  const ExploreResult r = explore(drain_pool({7, 7, 7}));
  EXPECT_EQ(r.stats.runs, 6u);
  EXPECT_EQ(r.stats.sleep_skips, 0u);
  EXPECT_TRUE(r.stats.complete);
}

TEST(McExplorer, ReductionIsSoundOnMixedDependencies) {
  // Two messages to process 0 (dependent pair) and one to process 1.
  // POR may prune transpositions of the independent one but must keep
  // both relative orders of the dependent pair. We check soundness by
  // recording, for each complete run, the delivery order *restricted to
  // recipient 0* -- both dependent orders must survive reduction.
  auto run_with = [](bool por) {
    std::vector<std::string> dep_orders;
    ExploreOptions o;
    o.por = por;
    o.jobs = 1;  // dep_orders is not thread-safe; keep the sweep inline
    // Tag the two recipient-0 messages by their `from` field so the
    // restriction is observable.
    RunFn run = [&dep_orders](ChoiceSource& src) {
      std::vector<sim::Message> pending(3);
      pending[0].from = 10;
      pending[0].to = 0;
      pending[1].from = 20;
      pending[1].to = 0;
      pending[2].from = 30;
      pending[2].to = 1;
      std::string order;
      while (!pending.empty()) {
        const std::size_t i = src.pick(pending);
        if (pending[i].to == 0) {
          order += pending[i].from == 10 ? 'a' : 'b';
        }
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      }
      dep_orders.push_back(order);
      return RunVerdict{};
    };
    (void)explore(run, o);
    return dep_orders;
  };
  const std::vector<std::string> reduced = run_with(true);
  std::size_t ab = 0;
  std::size_t ba = 0;
  for (const std::string& s : reduced) {
    ab += s == "ab";
    ba += s == "ba";
  }
  EXPECT_GE(ab, 1u);
  EXPECT_GE(ba, 1u);
  EXPECT_LT(reduced.size(), run_with(false).size());
}

TEST(McExplorer, CapsMarkResultIncomplete) {
  ExploreOptions o;
  o.max_runs = 1;  // per root subtree
  const ExploreResult r = explore(binary_tree(3), o);
  EXPECT_FALSE(r.stats.complete);
  EXPECT_LT(r.stats.runs, 8u);
  EXPECT_FALSE(r.found);
}

TEST(McExplorer, TruncatedRunsAreCountedAndNotJudged) {
  RunFn run = [](ChoiceSource& src) {
    (void)src.choose(2);
    RunVerdict v;
    v.truncated = true;
    return v;
  };
  const ExploreResult r = explore(run);
  EXPECT_EQ(r.stats.runs, 2u);
  EXPECT_EQ(r.stats.truncated_runs, 2u);
  EXPECT_TRUE(r.stats.complete);
}

TEST(McExplorer, ExportsMcMetrics) {
  obs::Counter& runs = obs::global().counter("mc.runs");
  obs::Counter& states = obs::global().counter("mc.states.explored");
  const std::uint64_t runs0 = runs.value();
  const std::uint64_t states0 = states.value();
  const ExploreResult r = explore(binary_tree(2));
  EXPECT_EQ(runs.value() - runs0, r.stats.runs);
  EXPECT_EQ(states.value() - states0, r.stats.states);
}

}  // namespace
}  // namespace rbvc::mc
