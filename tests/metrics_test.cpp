// The run-telemetry layer (obs/metrics.h): histogram bucket semantics,
// registry find-or-create and reset_values handle stability, the stable
// JSON dump/parse round-trip (byte-for-byte, like Trace::dump/parse),
// parse rejection of malformed documents, label sanitization, ScopedTimer
// monotonicity, and lock-free recording under multi-threaded contention
// (ctest labels: obs, tsan).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace rbvc::obs {
namespace {

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  // bucket i counts v <= bounds[i] (and > bounds[i-1]); overflow is last.
  EXPECT_EQ(h.bucket_of(-5.0), 0u);
  EXPECT_EQ(h.bucket_of(0.5), 0u);
  EXPECT_EQ(h.bucket_of(1.0), 0u);  // boundary lands in the lower bucket
  EXPECT_EQ(h.bucket_of(1.0000001), 1u);
  EXPECT_EQ(h.bucket_of(10.0), 1u);
  EXPECT_EQ(h.bucket_of(100.0), 2u);
  EXPECT_EQ(h.bucket_of(100.0001), 3u);  // overflow bucket

  h.observe(1.0);
  h.observe(10.0);
  h.observe(1e9);
  ASSERT_EQ(h.counts().size(), 4u);  // bounds.size() + 1
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 0u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1.0 + 10.0 + 1e9);
}

TEST(HistogramTest, BoundsMustBeStrictlyIncreasing) {
  EXPECT_THROW(Histogram({1.0, 1.0}), invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), invalid_argument);
  EXPECT_NO_THROW(Histogram({}));       // overflow-only histogram is legal
  EXPECT_NO_THROW(Histogram({-1.0, 0.0, 1.0}));
}

TEST(RegistryTest, FindOrCreateReturnsStableHandles) {
  Registry reg;
  Counter& c = reg.counter("a.count");
  c.inc(3);
  EXPECT_EQ(reg.counter("a.count").value(), 3u);  // same entry
  EXPECT_EQ(&reg.counter("a.count"), &c);
  EXPECT_EQ(reg.find_counter("a.count")->value(), 3u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);

  Histogram& h = reg.histogram("a.hist", {1.0, 2.0});
  // Bounds are fixed by the first creation; later calls ignore theirs.
  EXPECT_EQ(&reg.histogram("a.hist", {5.0}), &h);
  EXPECT_EQ(h.bounds().size(), 2u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(RegistryTest, MetricNamesAreValidated) {
  Registry reg;
  EXPECT_THROW(reg.counter(""), invalid_argument);
  EXPECT_THROW(reg.counter("has space"), invalid_argument);
  EXPECT_THROW(reg.gauge("quote\""), invalid_argument);
  EXPECT_NO_THROW(reg.counter("A-Za-z0-9_.:/-ok"));
}

TEST(RegistryTest, ResetValuesZeroesButKeepsHandles) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  Histogram& h = reg.histogram("h", count_buckets());
  c.inc(7);
  g.set(2.5);
  h.observe(3.0);

  reg.reset_values();
  EXPECT_EQ(reg.size(), 3u);  // entries survive, values don't
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.sum(), 0.0);

  // The pre-reset handles still feed the same registry entries.
  c.inc();
  EXPECT_EQ(reg.find_counter("c")->value(), 1u);
}

TEST(RegistryTest, DumpParseRoundTripsByteForByte) {
  Registry reg;
  reg.counter("sim.async.messages_sent").inc(12345);
  reg.counter("lp.solves").inc(1);
  reg.gauge("workload.sync.achieved_delta").set(0.1e-17);
  reg.gauge("neg").set(-3.75);
  reg.histogram("lp.seconds", time_buckets()).observe(2.5e-5);
  Histogram& h = reg.histogram("rounds", {1.0, 2.0, 4.0});
  h.observe(1.0);
  h.observe(3.0);
  h.observe(100.0);

  const std::string dump = reg.dump_json();
  const Registry back = Registry::parse(dump);
  EXPECT_EQ(back.dump_json(), dump);  // serialization is a fixpoint

  EXPECT_EQ(back.find_counter("sim.async.messages_sent")->value(), 12345u);
  EXPECT_DOUBLE_EQ(back.find_gauge("neg")->value(), -3.75);
  const Histogram* hb = back.find_histogram("rounds");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->total(), 3u);
  EXPECT_DOUBLE_EQ(hb->sum(), 104.0);
  EXPECT_EQ(hb->counts(), h.counts());
}

TEST(RegistryTest, EmptyRegistryRoundTrips) {
  Registry reg;
  const std::string dump = reg.dump_json();
  EXPECT_EQ(dump,
            "{\n"
            "  \"version\": 1,\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"histograms\": {}\n"
            "}\n");
  EXPECT_EQ(Registry::parse(dump).dump_json(), dump);
}

TEST(RegistryTest, ParseRejectsMalformedDocuments) {
  const std::string good = [] {
    Registry reg;
    reg.counter("c").inc(1);
    return reg.dump_json();
  }();
  EXPECT_NO_THROW(Registry::parse(good));
  EXPECT_THROW(Registry::parse(""), invalid_argument);
  EXPECT_THROW(Registry::parse("{}"), invalid_argument);  // missing sections
  EXPECT_THROW(Registry::parse(good + "x"), invalid_argument);  // trailing
  EXPECT_THROW(Registry::parse(good.substr(0, good.size() / 2)),
               invalid_argument);  // truncated
  // Unknown schema versions are rejected, not misread.
  std::string future = good;
  future.replace(future.find("\"version\": 1"),
                 std::string("\"version\": 1").size(), "\"version\": 99");
  EXPECT_THROW(Registry::parse(future), invalid_argument);
  // Histogram counts must be bounds.size() + 1.
  EXPECT_THROW(
      Registry::parse("{\n\"version\": 1,\n\"counters\": {},\n"
                      "\"gauges\": {},\n\"histograms\": {\"h\": "
                      "{\"bounds\": [1, 2], \"counts\": [0, 1], "
                      "\"sum\": 0}}\n}\n"),
      invalid_argument);
  // Negative counter values are not counters.
  EXPECT_THROW(
      Registry::parse("{\n\"version\": 1,\n\"counters\": {\"c\": -1},\n"
                      "\"gauges\": {},\n\"histograms\": {}\n}\n"),
      invalid_argument);
}

TEST(RegistryTest, ParsedSnapshotIsDataNotALiveGate) {
  Registry reg;
  reg.set_enabled(true);
  EXPECT_FALSE(Registry::parse(reg.dump_json()).enabled());
}

TEST(SanitizeLabelTest, MapsHostileKindsIntoTheNameCharset) {
  EXPECT_EQ(sanitize_label("echo"), "echo");
  EXPECT_EQ(sanitize_label("rbc/echo:2"), "rbc/echo:2");
  EXPECT_EQ(sanitize_label("forged kind\n{evil}"), "forged_kind__evil_");
  EXPECT_EQ(sanitize_label(""), "unknown");
  // Sanitized labels always make legal metric names.
  Registry reg;
  EXPECT_NO_THROW(reg.counter("sim.sent." + sanitize_label("\"\\ ")));
}

TEST(ScopedTimerTest, ElapsedIsMonotoneAndObservedOnDestruction) {
  Registry reg;
  {
    ScopedTimer t(reg, "k.seconds");
    const double a = t.elapsed_seconds();
    EXPECT_GE(a, 0.0);
    // Burn a little time; steady clock never goes backwards.
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<double>(i);
    const double b = t.elapsed_seconds();
    EXPECT_GE(b, a);
  }
  const Histogram* h = reg.find_histogram("k.seconds");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->bounds(), time_buckets());
  EXPECT_EQ(h->total(), 1u);
  EXPECT_GE(h->sum(), 0.0);
}

TEST(GlobalRegistryTest, IsASingletonWithStableHandles) {
  Counter& c = global().counter("test.metrics_test.pings");
  const std::uint64_t before = c.value();
  global().counter("test.metrics_test.pings").inc();
  EXPECT_EQ(c.value(), before + 1);
}

TEST(RegistryTest, ResetWallclockZeroesOnlyTimeHistograms) {
  Registry reg;
  reg.counter("c").inc(5);
  reg.gauge("g").set(2.5);
  reg.histogram("t.seconds", time_buckets()).observe(0.01);
  reg.histogram("depth", count_buckets()).observe(3.0);
  reg.reset_wallclock_values();
  EXPECT_EQ(reg.counter("c").value(), 5u);
  EXPECT_EQ(reg.gauge("g").value(), 2.5);
  EXPECT_EQ(reg.histogram("t.seconds", time_buckets()).total(), 0u);
  EXPECT_EQ(reg.histogram("t.seconds", time_buckets()).sum(), 0.0);
  EXPECT_EQ(reg.histogram("depth", count_buckets()).total(), 1u);
}

// ---------------------------------------------------------------------------
// Concurrency: the parallel episode executor hammers one global registry
// from every worker, so recording must lose nothing. These tests are the
// TSan surface for the sharded-counter / atomic-histogram design.
// ---------------------------------------------------------------------------

TEST(ConcurrencyTest, ShardedCounterLosesNoIncrements) {
  Registry reg;
  Counter& c = reg.counter("concurrent.pings");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);  // == a serial total
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ConcurrencyTest, HistogramObserveIsExactUnderContention) {
  Registry reg;
  Histogram& h = reg.histogram("concurrent.depth", {1.0, 2.0, 4.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    // 0.5 is exactly representable, so the CAS-accumulated sum has one
    // exact value regardless of addition order.
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(0.5);
    });
  }
  for (auto& t : threads) t.join();
  constexpr std::uint64_t kTotal = std::uint64_t(kThreads) * kPerThread;
  EXPECT_EQ(h.total(), kTotal);
  EXPECT_EQ(h.counts()[0], kTotal);
  EXPECT_EQ(h.sum(), 0.5 * static_cast<double>(kTotal));
}

TEST(ConcurrencyTest, GaugeAndEnableFlagAreAtomic) {
  Registry reg;
  Gauge& g = reg.gauge("concurrent.level");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg, &g, t] {
      for (int i = 0; i < 2000; ++i) {
        g.set(static_cast<double>(t));
        reg.set_enabled(t % 2 == 0);
        (void)reg.enabled();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Last-writer-wins: the value is one of the written ones, never torn.
  const double v = g.value();
  EXPECT_TRUE(v == 0.0 || v == 1.0 || v == 2.0 || v == 3.0);
}

TEST(ConcurrencyTest, HandleCreationRacesWithRecording) {
  Registry reg;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 500; ++i) {
        reg.counter("race.c" + std::to_string(i % 7)).inc();
        reg.histogram("race.h", count_buckets()).observe(1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::uint64_t total = 0;
  for (int i = 0; i < 7; ++i) {
    total += reg.counter("race.c" + std::to_string(i)).value();
  }
  EXPECT_EQ(total, 4u * 500u);
  EXPECT_EQ(reg.histogram("race.h", count_buckets()).total(), 4u * 500u);
}

}  // namespace
}  // namespace rbvc::obs
