#include "opt/minimax.h"

#include <gtest/gtest.h>

#include "geometry/simplex_geometry.h"
#include "hull/relaxed_hull.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(MinimaxTest, ZeroWhenHullsIntersect) {
  const std::vector<std::vector<Vec>> sets = {
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}},
      {{1.0, 1.0}, {3.0, 1.0}, {1.0, 3.0}},
  };
  const auto r = min_max_hull_distance(sets, {5.0, 5.0});
  EXPECT_LT(r.value, 1e-6);
}

TEST(MinimaxTest, TwoPointsMidpoint) {
  // Two singleton hulls at distance 2: optimum is the midpoint, value 1.
  const std::vector<std::vector<Vec>> sets = {{{-1.0, 0.0}}, {{1.0, 0.0}}};
  const auto r = min_max_hull_distance(sets, {0.3, 0.7});
  EXPECT_NEAR(r.value, 1.0, 1e-4);
  EXPECT_NEAR(r.point[0], 0.0, 1e-3);
  EXPECT_NEAR(r.point[1], 0.0, 1e-3);
}

TEST(MinimaxTest, MatchesSimplexInradius) {
  // For a simplex's facets, min-max distance = inradius (Lemma 13).
  Rng rng(111);
  for (int rep = 0; rep < 6; ++rep) {
    const std::size_t d = 2 + rep % 3;
    const auto verts = workload::random_simplex(rng, d);
    const auto g = SimplexGeometry::build(verts);
    ASSERT_TRUE(g.has_value());
    const auto r =
        min_max_hull_distance(drop_f_subsets(verts, 1), mean(verts));
    // Iterative accuracy: a few percent relative plus a small floor (the
    // draw can be a nearly degenerate simplex with a tiny inradius).
    EXPECT_NEAR(r.value, g->inradius(), g->inradius() * 0.05 + 2e-4)
        << "d=" << d << " rep=" << rep;
    // The numerical value can never undercut the true optimum by more than
    // solver noise.
    EXPECT_GT(r.value, g->inradius() * 0.98 - 1e-9);
  }
}

TEST(MinimaxTest, ValueIsUpperBoundAndAchievable) {
  // The reported value must equal the actual max distance at the point.
  Rng rng(113);
  const auto pts = workload::gaussian_cloud(rng, 7, 3);
  const auto sets = drop_f_subsets(pts, 2);
  const auto r = min_max_hull_distance(sets, mean(pts));
  double actual = 0.0;
  for (const auto& s : sets) {
    actual = std::max(actual, project_to_hull(r.point, s).distance);
  }
  EXPECT_NEAR(r.value, actual, 1e-9);
}

TEST(MinimaxTest, DeterministicForFixedInput) {
  const std::vector<std::vector<Vec>> sets = {{{-1.0, 0.0}}, {{1.0, 1.0}}};
  const auto a = min_max_hull_distance(sets, {0.0, 0.0});
  const auto b = min_max_hull_distance(sets, {0.0, 0.0});
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.point, b.point);
}

TEST(MinimaxTest, RespectsIterationBudget) {
  MinimaxOptions opts;
  opts.iters = 5;
  opts.polish_iters = 0;
  const std::vector<std::vector<Vec>> sets = {{{-1.0, 0.0}}, {{1.0, 0.0}}};
  const auto r = min_max_hull_distance(sets, {10.0, 10.0}, opts);
  EXPECT_LE(r.evals, (5u + 2u) * sets.size());
}

TEST(MinimaxTest, EmptySetListThrows) {
  EXPECT_THROW(min_max_hull_distance(std::vector<PointView>{}, {0.0}),
               invalid_argument);
}

}  // namespace
}  // namespace rbvc
