#include "lp/model.h"

#include <gtest/gtest.h>

namespace rbvc::lp {
namespace {

TEST(ModelTest, MaximizeWithInequalities) {
  // max 3x + 2y  s.t.  x + y <= 4,  x <= 2  (x, y >= 0)  ->  (2, 2), z = 10.
  Model m;
  const auto x = m.add_var(3.0);
  const auto y = m.add_var(2.0);
  m.set_sense(Sense::kMaximize);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kLe, 4.0);
  m.add_constraint({{x, 1.0}}, Rel::kLe, 2.0);
  const auto sol = m.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 2.0, 1e-9);
}

TEST(ModelTest, FreeVariables) {
  // min x  s.t.  x >= -5  with x free -> x = -5.
  Model m;
  const auto x = m.add_var(1.0, /*free=*/true);
  m.add_constraint({{x, 1.0}}, Rel::kGe, -5.0);
  const auto sol = m.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[x], -5.0, 1e-9);
}

TEST(ModelTest, EqualityConstraints) {
  Model m;
  const auto x = m.add_var(0.0, true);
  const auto y = m.add_var(0.0, true);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Rel::kEq, 3.0);
  m.add_constraint({{x, 1.0}, {y, -1.0}}, Rel::kEq, 1.0);
  const auto sol = m.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-9);
}

TEST(ModelTest, InfeasibleReported) {
  Model m;
  const auto x = m.add_var();
  m.add_constraint({{x, 1.0}}, Rel::kGe, 2.0);
  m.add_constraint({{x, 1.0}}, Rel::kLe, 1.0);
  EXPECT_EQ(m.solve().status, Status::kInfeasible);
}

TEST(ModelTest, UnboundedReported) {
  Model m;
  const auto x = m.add_var(1.0, /*free=*/true);
  m.add_constraint({{x, 1.0}}, Rel::kLe, 0.0);
  EXPECT_EQ(m.solve().status, Status::kUnbounded);
}

TEST(ModelTest, AddVarsBatch) {
  Model m;
  const auto first = m.add_vars(3, 1.0);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(m.num_vars(), 3u);
  EXPECT_THROW(m.add_vars(0), invalid_argument);
}

TEST(ModelTest, RepeatedTermsAccumulate) {
  // x + x <= 4  should behave as 2x <= 4.
  Model m;
  const auto x = m.add_var(-1.0);
  m.add_constraint({{x, 1.0}, {x, 1.0}}, Rel::kLe, 4.0);
  const auto sol = m.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
}

TEST(ModelTest, UnknownVariableThrows) {
  Model m;
  (void)m.add_var();
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, Rel::kLe, 1.0), invalid_argument);
  EXPECT_THROW(m.set_objective_coeff(9, 1.0), invalid_argument);
}

TEST(ModelTest, SetObjectiveLater) {
  Model m;
  const auto x = m.add_var();
  m.add_constraint({{x, 1.0}}, Rel::kLe, 7.0);
  m.set_objective_coeff(x, -1.0);  // min -x -> x = 7
  const auto sol = m.solve();
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[x], 7.0, 1e-9);
}

}  // namespace
}  // namespace rbvc::lp
