// Cluster runtime end to end: ConsensusNode + ClusterClient deciding
// pipelined instance streams over LocalBus and TCP (including a
// crash-faulted node), and the sync-round driver running DolevStrong / ALGO
// over an asynchronous transport with a differential against the sim
// engine.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "consensus/algo_relaxed.h"
#include "net/admin.h"
#include "net/load.h"
#include "net/local_bus.h"
#include "net/node.h"
#include "net/sync_driver.h"
#include "net/tcp_transport.h"
#include "obs/events.h"
#include "protocols/dolev_strong.h"
#include "sim/sync_engine.h"

namespace {

using rbvc::Vec;
using rbvc::consensus::AlgoProcess;
using rbvc::net::ClusterClient;
using rbvc::net::ConsensusNode;
using rbvc::net::LoadOptions;
using rbvc::net::LocalBus;
using rbvc::net::TcpTransport;
using rbvc::net::Transport;
using rbvc::net::run_pipelined_load;
using rbvc::net::run_sync_over_transport;
using rbvc::protocols::DolevStrongProcess;
using rbvc::sim::ProcessId;

ConsensusNode::Params node_params(std::size_t n, std::size_t f) {
  ConsensusNode::Params p;
  p.prm.n = n;
  p.prm.f = f;
  p.prm.rounds = 2;
  return p;
}

struct NodeFleet {
  std::atomic<bool> stop{false};
  std::vector<std::unique_ptr<ConsensusNode>> nodes;
  std::vector<std::thread> threads;

  void add(ConsensusNode::Params params, Transport& t) {
    nodes.push_back(std::make_unique<ConsensusNode>(params, t));
    threads.emplace_back([this, node = nodes.back().get()] {
      node->serve(stop);
    });
  }
  void shutdown() {
    stop.store(true);
    for (auto& t : threads) t.join();
    threads.clear();
  }
  ~NodeFleet() { shutdown(); }
};

TEST(ClusterTest, PipelinedInstancesOverLocalBus) {
  constexpr std::size_t kN = 4;
  LocalBus bus(kN + 1);  // nodes 0..3, client 4
  NodeFleet fleet;
  for (ProcessId id = 0; id < kN; ++id) {
    fleet.add(node_params(kN, 1), bus.endpoint(id));
  }
  ClusterClient client(bus.endpoint(kN), kN);

  LoadOptions opt;
  opt.nodes = kN;
  opt.instances = 6;
  opt.window = 3;
  opt.quorum = kN;  // all nodes alive: demand unanimity
  opt.dim = 2;
  opt.seed = 11;
  opt.decision_timeout_ms = 30000;
  const auto res = run_pipelined_load(client, opt);
  EXPECT_FALSE(res.stalled);
  EXPECT_EQ(res.decided, opt.instances);
  EXPECT_EQ(res.failed, 0u);
  EXPECT_EQ(res.latencies_ms.size(), opt.instances);
  fleet.shutdown();
  std::size_t proposed = 0;
  for (const auto& n : fleet.nodes) proposed += n->stats().proposed;
  EXPECT_EQ(proposed, kN * opt.instances);
}

TEST(ClusterTest, DecisionsStayNearTheInputs) {
  constexpr std::size_t kN = 4;
  LocalBus bus(kN + 1);
  NodeFleet fleet;
  for (ProcessId id = 0; id < kN; ++id) {
    fleet.add(node_params(kN, 1), bus.endpoint(id));
  }
  ClusterClient client(bus.endpoint(kN), kN);
  // All inputs inside the unit box; every decision must stay within the
  // box inflated by the relaxation (loose bound: one box width).
  const std::vector<Vec> inputs{
      {0.1, 0.2}, {0.9, 0.4}, {0.3, 0.8}, {0.6, 0.6}};
  client.propose(0, inputs);
  std::map<ProcessId, Vec> decisions;
  while (decisions.size() < kN) {
    auto ev = client.next_decision(30000);
    ASSERT_TRUE(ev.has_value()) << "cluster stalled";
    ASSERT_TRUE(ev->ok);
    decisions[ev->node] = ev->value;
  }
  for (const auto& [node, v] : decisions) {
    ASSERT_EQ(v.size(), 2u);
    for (const double x : v) {
      EXPECT_GE(x, -1.0) << "node " << node;
      EXPECT_LE(x, 2.0) << "node " << node;
    }
  }
}

TEST(ClusterTest, CrashFaultedNodeDoesNotStallTheCluster) {
  constexpr std::size_t kN = 4;
  LocalBus bus(kN + 1);
  NodeFleet fleet;
  for (ProcessId id = 0; id < kN; ++id) {
    auto params = node_params(kN, 1);
    if (id == 3) params.crash_after_decided = 2;  // the crash-faulted node
    fleet.add(params, bus.endpoint(id));
  }
  ClusterClient client(bus.endpoint(kN), kN);

  LoadOptions opt;
  opt.nodes = kN;
  opt.instances = 8;
  opt.window = 2;
  opt.quorum = kN - 1;  // f = 1: three ok decisions resolve an instance
  opt.dim = 2;
  opt.seed = 23;
  opt.decision_timeout_ms = 30000;
  const auto res = run_pipelined_load(client, opt);
  EXPECT_FALSE(res.stalled);
  EXPECT_EQ(res.decided, opt.instances);
  fleet.shutdown();
  EXPECT_TRUE(fleet.nodes[3]->crashed());
}

TEST(ClusterTest, PipelinedInstancesOverTcp) {
  constexpr std::size_t kN = 4;
  auto cluster = TcpTransport::make_local_cluster(kN + 1);
  for (ProcessId id = 0; id < kN; ++id) {
    cluster[id]->wait_connected(kN - 1, 10000);
  }
  NodeFleet fleet;
  for (ProcessId id = 0; id < kN; ++id) {
    fleet.add(node_params(kN, 1), *cluster[id]);
  }
  ClusterClient client(*cluster[kN], kN);

  LoadOptions opt;
  opt.nodes = kN;
  opt.instances = 4;
  opt.window = 2;
  opt.quorum = kN - 1;
  opt.dim = 2;
  opt.seed = 31;
  opt.decision_timeout_ms = 30000;
  const auto res = run_pipelined_load(client, opt);
  EXPECT_FALSE(res.stalled);
  EXPECT_EQ(res.decided, opt.instances);
  fleet.shutdown();
  for (auto& t : cluster) t->close();
}

// --- sync driver -----------------------------------------------------------

Vec mean_decision(const std::vector<Vec>& vs) {
  Vec out(vs.at(0).size(), 0.0);
  for (const auto& v : vs) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += v[i];
  }
  for (auto& x : out) x /= static_cast<double>(vs.size());
  return out;
}

// DolevStrong (authenticated, sync) over LocalBus must resolve the same
// inputs and decision as the lockstep sim engine: the round driver's
// barriers reconstruct the synchronous model exactly.
TEST(SyncDriverTest, DolevStrongDifferentialAgainstSim) {
  constexpr std::size_t kN = 3, kF = 1;
  rbvc::sim::SignatureAuthority authority(99);
  const std::vector<Vec> inputs{{1.0, 2.0}, {3.0, -1.0}, {0.5, 0.5}};
  const Vec dflt{0.0, 0.0};

  // Reference sim run.
  std::vector<Vec> sim_decisions(kN);
  {
    rbvc::sim::SyncEngine eng;
    for (ProcessId id = 0; id < kN; ++id) {
      eng.add(std::make_unique<DolevStrongProcess>(
          kN, kF, id, inputs[id], dflt, mean_decision,
          authority.signer_for(id), &authority));
    }
    const auto stats = eng.run(DolevStrongProcess::rounds_needed(kF));
    ASSERT_TRUE(stats.all_decided);
    for (ProcessId id = 0; id < kN; ++id) {
      sim_decisions[id] =
          dynamic_cast<DolevStrongProcess&>(eng.process(id)).decision();
    }
  }

  LocalBus bus(kN);
  std::vector<Vec> net_decisions(kN);
  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      DolevStrongProcess p(kN, kF, id, inputs[id], dflt, mean_decision,
                           authority.signer_for(id), &authority);
      rbvc::net::SyncDriverOptions opts;
      opts.max_rounds = DolevStrongProcess::rounds_needed(kF);
      const auto res = run_sync_over_transport(p, bus.endpoint(id), opts);
      EXPECT_TRUE(res.decided) << "endpoint " << id;
      EXPECT_EQ(res.timeouts, 0u) << "endpoint " << id;
      net_decisions[id] = p.decision();
    });
  }
  for (auto& t : threads) t.join();
  for (ProcessId id = 0; id < kN; ++id) {
    EXPECT_EQ(net_decisions[id], sim_decisions[id]) << "process " << id;
  }
}

// A silent (crashed) participant costs one barrier timeout per round and
// resolves to the default value -- every live process still decides, and
// identically.
TEST(SyncDriverTest, SilentPeerTimesOutToDefault) {
  constexpr std::size_t kN = 3, kF = 1;
  rbvc::sim::SignatureAuthority authority(7);
  const std::vector<Vec> inputs{{2.0}, {4.0}, {100.0}};  // 2 never speaks
  const Vec dflt{0.0};

  LocalBus bus(kN);
  std::vector<Vec> resolved0;
  std::vector<Vec> decisions(kN - 1);
  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN - 1; ++id) {
    threads.emplace_back([&, id] {
      DolevStrongProcess p(kN, kF, id, inputs[id], dflt, mean_decision,
                           authority.signer_for(id), &authority);
      rbvc::net::SyncDriverOptions opts;
      opts.max_rounds = DolevStrongProcess::rounds_needed(kF);
      opts.round_timeout_ms = 400;
      const auto res = run_sync_over_transport(p, bus.endpoint(id), opts);
      EXPECT_TRUE(res.decided) << "endpoint " << id;
      EXPECT_GT(res.timeouts, 0u) << "endpoint " << id;
      decisions[id] = p.decision();
      if (id == 0) resolved0 = p.resolved_inputs();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(decisions[0], decisions[1]);
  ASSERT_EQ(resolved0.size(), kN);
  EXPECT_EQ(resolved0[0], inputs[0]);
  EXPECT_EQ(resolved0[1], inputs[1]);
  EXPECT_EQ(resolved0[2], dflt);  // the silent peer resolves to default
}

// ALGO's EIG core (unauthenticated, n >= 3f+1) over the transport: all
// correct processes reach the identical relaxed decision, matching the sim.
TEST(SyncDriverTest, AlgoOverLocalBusMatchesSim) {
  constexpr std::size_t kN = 4, kF = 1;
  const std::vector<Vec> inputs{
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};
  const Vec dflt{0.0, 0.0};

  std::vector<Vec> sim_decisions(kN);
  {
    rbvc::sim::SyncEngine eng;
    for (ProcessId id = 0; id < kN; ++id) {
      eng.add(std::make_unique<AlgoProcess>(kN, kF, id, inputs[id], dflt));
    }
    const auto stats = eng.run(AlgoProcess::rounds_needed(kF));
    ASSERT_TRUE(stats.all_decided);
    for (ProcessId id = 0; id < kN; ++id) {
      sim_decisions[id] =
          dynamic_cast<AlgoProcess&>(eng.process(id)).decision();
    }
  }

  LocalBus bus(kN);
  std::vector<Vec> net_decisions(kN);
  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      AlgoProcess p(kN, kF, id, inputs[id], dflt);
      rbvc::net::SyncDriverOptions opts;
      opts.max_rounds = AlgoProcess::rounds_needed(kF);
      const auto res = run_sync_over_transport(p, bus.endpoint(id), opts);
      EXPECT_TRUE(res.decided) << "endpoint " << id;
      net_decisions[id] = p.decision();
    });
  }
  for (auto& t : threads) t.join();
  for (ProcessId id = 0; id < kN; ++id) {
    EXPECT_EQ(net_decisions[id], sim_decisions[id]) << "process " << id;
  }
}

// The live-introspection surface: LiveStatus mirrors the serve loop's
// stats, status_json is stable one-line JSON, and the AdminServer answers
// status / metrics / trace over its line protocol while the node serves.
TEST(AdminTest, StatusJsonAndAdminEndpointServeLiveState) {
  constexpr std::size_t kN = 4;
  LocalBus bus(kN + 1);
  NodeFleet fleet;
  for (ProcessId id = 0; id < kN; ++id) {
    fleet.add(node_params(kN, 1), bus.endpoint(id));
  }
  // Port 0: kernel-assigned, race-free under parallel ctest.
  rbvc::net::AdminServer admin(*fleet.nodes[0], 0);
  ASSERT_GT(admin.port(), 0);

  ClusterClient client(bus.endpoint(kN), kN);
  LoadOptions opt;
  opt.nodes = kN;
  opt.instances = 4;
  opt.window = 2;
  opt.quorum = kN;
  opt.dim = 2;
  opt.seed = 23;
  opt.decision_timeout_ms = 30000;
  const auto res = run_pipelined_load(client, opt);
  ASSERT_FALSE(res.stalled);
  ASSERT_EQ(res.decided, opt.instances);

  // status: one line of JSON whose counters match the node's own stats.
  const std::string status =
      rbvc::net::admin_query("127.0.0.1", admin.port(), "status");
  const auto& live = fleet.nodes[0]->live();
  EXPECT_EQ(status, fleet.nodes[0]->status_json() + "\n");
  EXPECT_EQ(live.decided.load(), opt.instances);
  EXPECT_NE(status.find("\"decided\":4"), std::string::npos) << status;
  EXPECT_NE(status.find("\"crashed\":0"), std::string::npos) << status;

  // metrics: the registry dump, which always carries the frames counter.
  const std::string metrics =
      rbvc::net::admin_query("127.0.0.1", admin.port(), "metrics");
  EXPECT_NE(metrics.find("net.frames_sent"), std::string::npos);

  // trace: flight-recorder JSONL that parses back (events from this very
  // load run are in it).
  const std::string trace =
      rbvc::net::admin_query("127.0.0.1", admin.port(), "trace");
  const auto events = rbvc::obs::events::parse_jsonl(trace);
  EXPECT_FALSE(events.empty());

  // Unknown commands get a diagnostic, not a hang.
  EXPECT_EQ(rbvc::net::admin_query("127.0.0.1", admin.port(), "bogus"),
            "err unknown command\n");

  admin.close();
  fleet.shutdown();
  // After shutdown the stats and the live mirror agree exactly.
  EXPECT_EQ(fleet.nodes[0]->stats().proposed, live.proposed.load());
  EXPECT_EQ(fleet.nodes[0]->stats().decided, live.decided.load());
  EXPECT_EQ(fleet.nodes[0]->stats().failed, live.failed.load());
}

// Nearest-rank percentile over the whole q range, including the q=0 edge
// whose rank of ceil(0)-1 = -1 must clamp before the size_t cast, not after.
TEST(LoadResultTest, LatencyPercentileClampsAtBothEnds) {
  rbvc::net::LoadResult res;
  EXPECT_EQ(res.latency_percentile(0.5), 0.0);  // empty: defined fallback
  res.latencies_ms = {40.0, 10.0, 30.0, 20.0};  // sorted: 10 20 30 40
  EXPECT_EQ(res.latency_percentile(0.0), 10.0);
  EXPECT_EQ(res.latency_percentile(0.25), 10.0);
  EXPECT_EQ(res.latency_percentile(0.50), 20.0);
  EXPECT_EQ(res.latency_percentile(0.51), 30.0);
  EXPECT_EQ(res.latency_percentile(0.99), 40.0);
  EXPECT_EQ(res.latency_percentile(1.0), 40.0);
}

}  // namespace
