// TcpTransport: mesh establishment on loopback, framed delivery, protocol
// traffic over real sockets, crash (send-to-dead-peer) behavior, and
// cluster-string parsing.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "net/tcp_transport.h"
#include "protocols/bracha_rbc.h"

namespace {

using rbvc::Vec;
using rbvc::net::TcpTransport;
using rbvc::net::Transport;
using rbvc::net::parse_cluster;
using rbvc::protocols::BrachaRbc;
using rbvc::sim::Message;
using rbvc::sim::ProcessId;

TEST(ParseCluster, HostPortList) {
  const auto c = parse_cluster("127.0.0.1:7000,localhost:7001,10.0.0.2:80");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].host, "127.0.0.1");
  EXPECT_EQ(c[0].port, 7000);
  EXPECT_EQ(c[1].host, "localhost");
  EXPECT_EQ(c[1].port, 7001);
  EXPECT_EQ(c[2].host, "10.0.0.2");
  EXPECT_EQ(c[2].port, 80);
  EXPECT_THROW(parse_cluster("no-port"), std::exception);
  EXPECT_THROW(parse_cluster(""), std::exception);
}

TEST(TcpTransportTest, MeshConnectsAndDelivers) {
  auto cluster = TcpTransport::make_local_cluster(3);
  for (auto& t : cluster) {
    EXPECT_EQ(t->wait_connected(2, 10000), 2u) << "endpoint " << t->self();
  }
  // Every ordered pair delivers, with sender stamped.
  for (ProcessId from = 0; from < 3; ++from) {
    for (ProcessId to = 0; to < 3; ++to) {
      if (from == to) continue;
      cluster[from]->send(to, Message("ping", {static_cast<int>(from)}));
    }
  }
  for (ProcessId to = 0; to < 3; ++to) {
    std::vector<bool> seen(3, false);
    for (int k = 0; k < 2; ++k) {
      auto m = cluster[to]->receive(10000);
      ASSERT_TRUE(m.has_value()) << "endpoint " << to;
      EXPECT_EQ(m->kind, "ping");
      EXPECT_EQ(m->to, to);
      seen[m->from] = true;
    }
    for (ProcessId from = 0; from < 3; ++from) {
      EXPECT_EQ(seen[from], from != to);
    }
  }
  for (auto& t : cluster) t->close();
}

TEST(TcpTransportTest, SelfSendLoopsBackWithoutSocket) {
  auto cluster = TcpTransport::make_local_cluster(2);
  cluster[0]->send(0, Message("self", {}, Vec{1.0}));
  auto m = cluster[0]->receive(2000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 0u);
  EXPECT_EQ(m->payload, Vec{1.0});
}

TEST(TcpTransportTest, LargePayloadSurvivesFraming) {
  auto cluster = TcpTransport::make_local_cluster(2);
  cluster[0]->wait_connected(1, 10000);
  Vec big(20000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<double>(i) * 0.5 - 1000.0;
  }
  cluster[0]->send(1, Message("bulk", {1, 2, 3}, big));
  auto m = cluster[1]->receive(10000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, big);
  EXPECT_EQ(m->meta, (std::vector<int>{1, 2, 3}));
}

TEST(TcpTransportTest, SendToDeadPeerDropsInsteadOfBlocking) {
  auto cluster = TcpTransport::make_local_cluster(3);
  for (auto& t : cluster) t->wait_connected(2, 10000);
  cluster[2]->close();  // peer 2 crashes
  // Give the readers a moment to observe the hangup, then hammer sends:
  // they must neither block nor throw (crash-fault model).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 0; i < 100; ++i) {
    cluster[0]->send(2, Message("into-the-void", {i}));
  }
  // Traffic between live peers still flows.
  cluster[0]->send(1, Message("alive"));
  auto m = cluster[1]->receive(10000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, "alive");
}

TEST(TcpTransportTest, ReceiveAfterCloseReportsClosed) {
  auto cluster = TcpTransport::make_local_cluster(2);
  cluster[0]->close();
  EXPECT_TRUE(cluster[0]->closed());
  EXPECT_FALSE(cluster[0]->receive(100).has_value());
}

// The acceptance bar: the identical BrachaRbc component that runs over the
// sim and LocalBus also runs over TCP sockets.
TEST(TcpTransportTest, BrachaRbcOverSockets) {
  constexpr std::size_t kN = 4, kF = 1;
  auto cluster = TcpTransport::make_local_cluster(kN);
  for (auto& t : cluster) t->wait_connected(kN - 1, 10000);
  const Vec value{3.25, -0.5};
  std::vector<Vec> delivered(kN);
  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      Transport& t = *cluster[id];
      BrachaRbc rbc(kN, kF, id);
      if (id == 1) rbc.broadcast(5, value, t, {9, 8});
      while (true) {
        auto m = t.receive(10000);
        ASSERT_TRUE(m.has_value()) << "endpoint " << id << " starved";
        auto dels = rbc.on_message(*m, t);
        if (!dels.empty()) {
          EXPECT_EQ(dels.front().source, 1u);
          EXPECT_EQ(dels.front().instance, 5);
          EXPECT_EQ(dels.front().extra, (std::vector<int>{9, 8}));
          delivered[id] = dels.front().value;
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (ProcessId id = 0; id < kN; ++id) EXPECT_EQ(delivered[id], value);
}

}  // namespace
