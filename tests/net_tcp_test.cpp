// TcpTransport: mesh establishment on loopback, framed delivery, protocol
// traffic over real sockets, crash (send-to-dead-peer) behavior, handshake
// edge cases driven by raw client sockets, and cluster-string parsing.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_transport.h"
#include "net/wire.h"
#include "protocols/bracha_rbc.h"

namespace {

using rbvc::Vec;
using rbvc::net::HostPort;
using rbvc::net::TcpOptions;
using rbvc::net::TcpTransport;
using rbvc::net::Transport;
using rbvc::net::parse_cluster;
using rbvc::protocols::BrachaRbc;
using rbvc::sim::Message;
using rbvc::sim::ProcessId;
namespace wire = rbvc::net::wire;

// Bound-and-listening loopback socket with a kernel-assigned port, for
// handing to TcpTransport's adopt-a-listener constructor.
int listen_loopback(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  EXPECT_EQ(::listen(fd, 8), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  port_out = ntohs(addr.sin_port);
  return fd;
}

// Raw client connection to 127.0.0.1:port -- a hand-driven "dialer" that
// lets tests control exactly how handshake bytes land in the segments.
int dial_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

std::string hello_frame(std::uint64_t id) {
  std::string body;
  for (std::size_t i = 0; i < 8; ++i) {
    body.push_back(static_cast<char>((id >> (8 * i)) & 0xFF));
  }
  return wire::frame(wire::FrameType::kHello, body);
}

void send_all(int fd, const std::string& bytes) {
  ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
}

// A 2-entry cluster whose peer-1 endpoint is never dialed by endpoint 0
// (only the higher id dials), so the raw sockets above fully control the
// accept side.
std::unique_ptr<TcpTransport> accept_only_server(std::uint16_t& port_out,
                                                 TcpOptions opts = {}) {
  const int lfd = listen_loopback(port_out);
  return std::make_unique<TcpTransport>(
      0, std::vector<HostPort>{{"127.0.0.1", port_out}, {"127.0.0.1", 1}},
      lfd, opts);
}

TEST(ParseCluster, HostPortList) {
  const auto c = parse_cluster("127.0.0.1:7000,localhost:7001,10.0.0.2:80");
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].host, "127.0.0.1");
  EXPECT_EQ(c[0].port, 7000);
  EXPECT_EQ(c[1].host, "localhost");
  EXPECT_EQ(c[1].port, 7001);
  EXPECT_EQ(c[2].host, "10.0.0.2");
  EXPECT_EQ(c[2].port, 80);
  EXPECT_THROW(parse_cluster("no-port"), std::exception);
  EXPECT_THROW(parse_cluster(""), std::exception);
}

TEST(TcpTransportTest, MeshConnectsAndDelivers) {
  auto cluster = TcpTransport::make_local_cluster(3);
  for (auto& t : cluster) {
    EXPECT_EQ(t->wait_connected(2, 10000), 2u) << "endpoint " << t->self();
  }
  // Every ordered pair delivers, with sender stamped.
  for (ProcessId from = 0; from < 3; ++from) {
    for (ProcessId to = 0; to < 3; ++to) {
      if (from == to) continue;
      cluster[from]->send(to, Message("ping", {static_cast<int>(from)}));
    }
  }
  for (ProcessId to = 0; to < 3; ++to) {
    std::vector<bool> seen(3, false);
    for (int k = 0; k < 2; ++k) {
      auto m = cluster[to]->receive(10000);
      ASSERT_TRUE(m.has_value()) << "endpoint " << to;
      EXPECT_EQ(m->kind, "ping");
      EXPECT_EQ(m->to, to);
      seen[m->from] = true;
    }
    for (ProcessId from = 0; from < 3; ++from) {
      EXPECT_EQ(seen[from], from != to);
    }
  }
  for (auto& t : cluster) t->close();
}

TEST(TcpTransportTest, SelfSendLoopsBackWithoutSocket) {
  auto cluster = TcpTransport::make_local_cluster(2);
  cluster[0]->send(0, Message("self", {}, Vec{1.0}));
  auto m = cluster[0]->receive(2000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->from, 0u);
  EXPECT_EQ(m->payload, Vec{1.0});
}

TEST(TcpTransportTest, LargePayloadSurvivesFraming) {
  auto cluster = TcpTransport::make_local_cluster(2);
  cluster[0]->wait_connected(1, 10000);
  Vec big(20000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<double>(i) * 0.5 - 1000.0;
  }
  cluster[0]->send(1, Message("bulk", {1, 2, 3}, big));
  auto m = cluster[1]->receive(10000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->payload, big);
  EXPECT_EQ(m->meta, (std::vector<int>{1, 2, 3}));
}

TEST(TcpTransportTest, SendToDeadPeerDropsInsteadOfBlocking) {
  auto cluster = TcpTransport::make_local_cluster(3);
  for (auto& t : cluster) t->wait_connected(2, 10000);
  cluster[2]->close();  // peer 2 crashes
  // Give the readers a moment to observe the hangup, then hammer sends:
  // they must neither block nor throw (crash-fault model).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (int i = 0; i < 100; ++i) {
    cluster[0]->send(2, Message("into-the-void", {i}));
  }
  // Traffic between live peers still flows.
  cluster[0]->send(1, Message("alive"));
  auto m = cluster[1]->receive(10000);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, "alive");
}

// A dialer pipelines message frames right behind its hello; when the
// kernel coalesces them into one segment the accept side must not drop the
// bytes that follow the hello.
TEST(TcpTransportTest, CoalescedHandshakeKeepsTrailingFrames) {
  std::uint16_t port = 0;
  auto server = accept_only_server(port);
  const int c = dial_loopback(port);
  Message m1("coalesced", {1});
  Message m2("coalesced", {2}, Vec{0.5});
  m1.from = m2.from = 1;
  send_all(c, hello_frame(1) + wire::frame_message(m1) +
                  wire::frame_message(m2));
  auto r1 = server->receive(10000);
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->meta, (std::vector<int>{1}));
  auto r2 = server->receive(10000);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->meta, (std::vector<int>{2}));
  EXPECT_EQ(r2->payload, Vec{0.5});
  ::close(c);
  server->close();
}

// Hello plus a partial message frame in the first segment: the reader must
// resume mid-frame instead of starting mid-stream and hitting bad magic.
TEST(TcpTransportTest, FrameSplitAcrossHandshakeBoundaryDelivers) {
  std::uint16_t port = 0;
  auto server = accept_only_server(port);
  const int c = dial_loopback(port);
  Message m("split", {7, 8}, Vec{-2.0, 4.0});
  m.from = 1;
  const std::string blob = hello_frame(1) + wire::frame_message(m);
  const std::size_t cut = hello_frame(1).size() + 5;  // mid-header of m
  send_all(c, blob.substr(0, cut));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  send_all(c, blob.substr(cut));
  auto r = server->receive(10000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, "split");
  EXPECT_EQ(r->meta, (std::vector<int>{7, 8}));
  EXPECT_EQ(r->payload, (Vec{-2.0, 4.0}));
  ::close(c);
  server->close();
}

// A client that connects and never speaks must neither block later
// handshakes (the hello is read off the acceptor thread) nor hang close()
// (its fd is receive-timed-out and shut down on close).
TEST(TcpTransportTest, SilentClientDoesNotWedgeAcceptorOrClose) {
  std::uint16_t port = 0;
  TcpOptions opts;
  opts.handshake_timeout_ms = 250;
  auto server = accept_only_server(port, opts);
  const int silent = dial_loopback(port);  // accepted first, says nothing
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const int talker = dial_loopback(port);
  Message m("after-silent", {42});
  m.from = 1;
  send_all(talker, hello_frame(1) + wire::frame_message(m));
  auto r = server->receive(10000);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->kind, "after-silent");
  server->close();  // must return despite the still-silent connection
  ::close(silent);
  ::close(talker);
}

TEST(TcpTransportTest, ReceiveAfterCloseReportsClosed) {
  auto cluster = TcpTransport::make_local_cluster(2);
  cluster[0]->close();
  EXPECT_TRUE(cluster[0]->closed());
  EXPECT_FALSE(cluster[0]->receive(100).has_value());
}

// The acceptance bar: the identical BrachaRbc component that runs over the
// sim and LocalBus also runs over TCP sockets.
TEST(TcpTransportTest, BrachaRbcOverSockets) {
  constexpr std::size_t kN = 4, kF = 1;
  auto cluster = TcpTransport::make_local_cluster(kN);
  for (auto& t : cluster) t->wait_connected(kN - 1, 10000);
  const Vec value{3.25, -0.5};
  std::vector<Vec> delivered(kN);
  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      Transport& t = *cluster[id];
      BrachaRbc rbc(kN, kF, id);
      if (id == 1) rbc.broadcast(5, value, t, {9, 8});
      while (true) {
        auto m = t.receive(10000);
        ASSERT_TRUE(m.has_value()) << "endpoint " << id << " starved";
        auto dels = rbc.on_message(*m, t);
        if (!dels.empty()) {
          EXPECT_EQ(dels.front().source, 1u);
          EXPECT_EQ(dels.front().instance, 5);
          EXPECT_EQ(dels.front().extra, (std::vector<int>{9, 8}));
          delivered[id] = dels.front().value;
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (ProcessId id = 0; id < kN; ++id) EXPECT_EQ(delivered[id], value);
}

}  // namespace
