// Transport boundary over in-process implementations: Mailbox semantics,
// LocalBus delivery, protocol objects (BrachaRbc, AsyncAveragingProcess)
// running unchanged over real threads, the SimTransport adapter's
// ScheduleLog byte-identity, and the sim-vs-LocalBus differential.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "consensus/async_averaging.h"
#include "net/local_bus.h"
#include "net/mailbox.h"
#include "net/sim_transport.h"
#include "protocols/bracha_rbc.h"
#include "sim/async_engine.h"
#include "sim/schedule_log.h"

namespace {

using rbvc::Vec;
using rbvc::consensus::AsyncAveragingProcess;
using rbvc::net::LocalBus;
using rbvc::net::Mailbox;
using rbvc::net::SimTransport;
using rbvc::net::Transport;
using rbvc::protocols::BrachaRbc;
using rbvc::sim::Message;
using rbvc::sim::ProcessId;

TEST(Mailbox, FifoPerProducerAndTimeout) {
  Mailbox mb;
  for (int i = 0; i < 5; ++i) mb.push(Message("m", {i}));
  for (int i = 0; i < 5; ++i) {
    auto m = mb.pop(0);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->meta.at(0), i);
  }
  EXPECT_FALSE(mb.pop(0).has_value());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(mb.pop(30).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
}

TEST(Mailbox, BlockedPopWokenByPush) {
  Mailbox mb;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.push(Message("late"));
  });
  auto m = mb.pop(2000);
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, "late");
}

TEST(Mailbox, CloseUnblocksAndDrainsBacklog) {
  Mailbox mb;
  mb.push(Message("a"));
  mb.close();
  // Already-delivered messages remain poppable after close...
  auto m = mb.pop(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->kind, "a");
  // ...then pop reports closed immediately instead of waiting.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(mb.pop(5000).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
}

TEST(Mailbox, ManyProducersLoseNothing) {
  Mailbox mb;
  constexpr int kProducers = 8;
  constexpr int kEach = 500;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&mb, p] {
      for (int i = 0; i < kEach; ++i) mb.push(Message("m", {p, i}));
    });
  }
  std::vector<int> next_per_producer(kProducers, 0);
  for (int got = 0; got < kProducers * kEach; ++got) {
    auto m = mb.pop(5000);
    ASSERT_TRUE(m.has_value()) << "lost messages after " << got;
    // Per-producer FIFO: each producer's sequence numbers arrive in order.
    EXPECT_EQ(m->meta.at(1), next_per_producer.at(m->meta.at(0))++);
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mb.pop(0).has_value());
}

TEST(LocalBusTest, RoutesAndStampsSender) {
  LocalBus bus(3);
  bus.endpoint(0).send(2, Message("hi", {7}));
  bus.endpoint(1).send(2, Message("yo"));
  auto a = bus.endpoint(2).receive(1000);
  auto b = bus.endpoint(2).receive(1000);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->to, 2u);
  EXPECT_EQ(b->to, 2u);
  // Self-send loops back like any other message.
  bus.endpoint(2).send(2, Message("self"));
  auto c = bus.endpoint(2).receive(1000);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->from, 2u);
  EXPECT_EQ(c->kind, "self");
}

// The same BrachaRbc component the sim engines drive, over LocalBus
// threads: every endpoint delivers the source's value exactly once.
TEST(LocalBusTest, BrachaRbcDeliversOverThreads) {
  constexpr std::size_t kN = 4, kF = 1;
  LocalBus bus(kN);
  const Vec value{1.5, -2.0};
  std::vector<Vec> delivered(kN);
  std::vector<std::thread> threads;
  for (ProcessId id = 0; id < kN; ++id) {
    threads.emplace_back([&, id] {
      Transport& t = bus.endpoint(id);
      BrachaRbc rbc(kN, kF, id);
      if (id == 0) rbc.broadcast(0, value, t);
      while (true) {
        auto m = t.receive(5000);
        ASSERT_TRUE(m.has_value()) << "endpoint " << id << " starved";
        auto dels = rbc.on_message(*m, t);
        if (!dels.empty()) {
          delivered[id] = dels.front().value;
          break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (ProcessId id = 0; id < kN; ++id) EXPECT_EQ(delivered[id], value);
}

// SimTransport passes sends through to the engine outbox unmodified, so a
// run whose processes send through the adapter records a byte-identical
// ScheduleLog to one that sends through the raw outbox.
namespace {
class AveragingOverTransport final : public rbvc::sim::AsyncProcess {
 public:
  AveragingOverTransport(AsyncAveragingProcess::Params prm, ProcessId self,
                         std::size_t n, Vec input)
      : inner_(prm, self, std::move(input)), self_(self), n_(n) {}
  void init(rbvc::sim::Outbox& out) override {
    SimTransport t(out, self_, n_);
    inner_.init(t);
  }
  void on_message(const Message& m, rbvc::sim::Outbox& out) override {
    SimTransport t(out, self_, n_);
    inner_.on_message(m, t);
  }
  bool decided() const override { return inner_.decided(); }
  const AsyncAveragingProcess& inner() const { return inner_; }

 private:
  AsyncAveragingProcess inner_;
  ProcessId self_;
  std::size_t n_;
};
}  // namespace

TEST(SimTransportTest, ScheduleLogByteIdenticalToRawOutbox) {
  constexpr std::size_t kN = 4, kF = 1;
  AsyncAveragingProcess::Params prm;
  prm.n = kN;
  prm.f = kF;
  prm.rounds = 2;
  const std::vector<Vec> inputs{{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}};

  auto run = [&](bool through_transport) {
    rbvc::sim::AsyncEngine eng(
        std::make_unique<rbvc::sim::RandomScheduler>(42));
    rbvc::sim::ScheduleLog log;
    eng.set_schedule_log(&log);
    std::vector<ProcessId> all;
    for (ProcessId id = 0; id < kN; ++id) {
      if (through_transport) {
        eng.add(std::make_unique<AveragingOverTransport>(prm, id, kN,
                                                         inputs[id]));
      } else {
        eng.add(std::make_unique<AsyncAveragingProcess>(prm, id, inputs[id]));
      }
      all.push_back(id);
    }
    const auto stats = eng.run(all, 200000);
    EXPECT_TRUE(stats.all_decided);
    return log.serialize();
  };

  EXPECT_EQ(run(true), run(false));
}

// Differential: with f = 0 every round uses all n verified values, so the
// decision is delivery-order independent -- the sim run and a free-running
// threaded LocalBus run must decide bit-identical vectors.
TEST(LocalBusTest, DifferentialAgainstSimWithZeroFaults) {
  constexpr std::size_t kN = 4;
  AsyncAveragingProcess::Params prm;
  prm.n = kN;
  prm.f = 0;
  prm.rounds = 3;
  // The relaxed delta* rules require f >= 1; the exact-Gamma baseline is
  // well-defined at f = 0 and equally delivery-order independent.
  prm.rule = AsyncAveragingProcess::Round0Rule::kExactGamma;
  const std::vector<Vec> inputs{
      {0.25, -1.0}, {2.0, 0.5}, {-0.75, 1.25}, {1.0, 1.0}};

  // Reference: deterministic sim episode.
  std::vector<Vec> sim_decisions(kN);
  {
    rbvc::sim::AsyncEngine eng(
        std::make_unique<rbvc::sim::RandomScheduler>(7));
    std::vector<ProcessId> all;
    for (ProcessId id = 0; id < kN; ++id) {
      eng.add(std::make_unique<AsyncAveragingProcess>(prm, id, inputs[id]));
      all.push_back(id);
    }
    ASSERT_TRUE(eng.run(all, 200000).all_decided);
    for (ProcessId id = 0; id < kN; ++id) {
      sim_decisions[id] =
          dynamic_cast<AsyncAveragingProcess&>(eng.process(id)).decision();
    }
  }

  // Same protocol over LocalBus threads, wall-clock delivery order.
  std::vector<Vec> bus_decisions(kN);
  {
    LocalBus bus(kN);
    std::vector<std::thread> threads;
    for (ProcessId id = 0; id < kN; ++id) {
      threads.emplace_back([&, id] {
        Transport& t = bus.endpoint(id);
        AsyncAveragingProcess p(prm, id, inputs[id]);
        p.init(t);
        while (!p.decided()) {
          auto m = t.receive(10000);
          ASSERT_TRUE(m.has_value()) << "endpoint " << id << " starved";
          p.on_message(*m, t);
        }
        ASSERT_FALSE(p.failed());
        bus_decisions[id] = p.decision();
      });
    }
    for (auto& t : threads) t.join();
  }

  for (ProcessId id = 0; id < kN; ++id) {
    EXPECT_EQ(bus_decisions[id], sim_decisions[id]) << "process " << id;
  }
}

}  // namespace
