// Tests for EIG Byzantine broadcast / interactive consistency (ALGO Step 1).
#include "protocols/om_broadcast.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "workload/byzantine_strategies.h"

namespace rbvc::protocols {
namespace {

DecisionFn keep_multiset() {
  // "Decision" that exposes the agreed multiset for checking (returns the
  // mean so the type fits; tests read resolved_inputs()).
  return [](const std::vector<Vec>& s) { return mean(s); };
}

struct Rig {
  sim::SyncEngine engine;
  std::vector<sim::ProcessId> correct;
};

// Builds n processes with `byz` Byzantine ids using the given strategy.
Rig build(std::size_t n, std::size_t f, std::size_t d,
            const std::vector<std::size_t>& byz,
            workload::SyncStrategy strategy, std::uint64_t seed) {
  Rig s;
  Rng rng(seed);
  for (std::size_t id = 0; id < n; ++id) {
    const bool is_byz =
        std::find(byz.begin(), byz.end(), id) != byz.end();
    if (is_byz) {
      s.engine.add(workload::make_sync_byzantine(strategy, n, f, id, d,
                                                 rng.next_u64()));
    } else {
      s.engine.add(std::make_unique<EigConsensusProcess>(
          n, f, id, rng.normal_vec(d), zeros(d), keep_multiset()));
    }
  }
  for (std::size_t id = 0; id < n; ++id) {
    if (std::find(byz.begin(), byz.end(), id) == byz.end()) {
      s.correct.push_back(id);
    }
  }
  return s;
}

std::vector<std::vector<Vec>> resolved_sets(Rig& s) {
  std::vector<std::vector<Vec>> out;
  for (auto id : s.correct) {
    out.push_back(dynamic_cast<EigConsensusProcess&>(s.engine.process(id))
                      .resolved_inputs());
  }
  return out;
}

TEST(EigTest, FaultFreeConsistency) {
  Rig s = build(4, 1, 3, {}, workload::SyncStrategy::kSilent, 11);
  const auto stats = s.engine.run(EigConsensusProcess::rounds_needed(1));
  ASSERT_TRUE(stats.all_decided);
  const auto sets = resolved_sets(s);
  // Everyone agrees on the multiset, and each entry is the true input.
  for (std::size_t i = 1; i < sets.size(); ++i) {
    EXPECT_EQ(sets[i], sets[0]);
  }
  for (auto id : s.correct) {
    const auto& p = dynamic_cast<EigConsensusProcess&>(s.engine.process(id));
    EXPECT_EQ(sets[0][id], p.input());
  }
}

TEST(EigTest, SilentByzantineYieldsDefault) {
  Rig s = build(4, 1, 2, {2}, workload::SyncStrategy::kSilent, 13);
  s.engine.run(EigConsensusProcess::rounds_needed(1));
  const auto sets = resolved_sets(s);
  for (std::size_t i = 1; i < sets.size(); ++i) EXPECT_EQ(sets[i], sets[0]);
  EXPECT_EQ(sets[0][2], zeros(2));  // silent source resolves to the default
}

TEST(EigTest, EquivocatorCannotSplitCorrectProcesses) {
  for (std::uint64_t seed : {17u, 19u, 23u}) {
    Rig s = build(4, 1, 3, {1}, workload::SyncStrategy::kEquivocate, seed);
    s.engine.run(EigConsensusProcess::rounds_needed(1));
    const auto sets = resolved_sets(s);
    for (std::size_t i = 1; i < sets.size(); ++i) {
      EXPECT_EQ(sets[i], sets[0]) << "seed " << seed;
    }
    // Correct processes' own inputs survive untouched.
    for (std::size_t idx = 0; idx < s.correct.size(); ++idx) {
      const auto id = s.correct[idx];
      const auto& p =
          dynamic_cast<EigConsensusProcess&>(s.engine.process(id));
      EXPECT_EQ(sets[0][id], p.input()) << "seed " << seed;
    }
  }
}

TEST(EigTest, LyingRelayCannotCorruptCorrectSources) {
  for (std::uint64_t seed : {29u, 31u}) {
    Rig s = build(4, 1, 3, {3}, workload::SyncStrategy::kLyingRelay, seed);
    s.engine.run(EigConsensusProcess::rounds_needed(1));
    const auto sets = resolved_sets(s);
    for (std::size_t i = 1; i < sets.size(); ++i) {
      EXPECT_EQ(sets[i], sets[0]) << "seed " << seed;
    }
    for (auto id : s.correct) {
      const auto& p =
          dynamic_cast<EigConsensusProcess&>(s.engine.process(id));
      EXPECT_EQ(sets[0][id], p.input()) << "seed " << seed;
    }
  }
}

TEST(EigTest, FTwoToleratesTwoByzantine) {
  Rig s = build(7, 2, 2, {0, 5}, workload::SyncStrategy::kEquivocate, 37);
  const auto stats = s.engine.run(EigConsensusProcess::rounds_needed(2));
  ASSERT_TRUE(stats.all_decided);
  EXPECT_EQ(stats.rounds, 4u);  // f + 2 rounds
  const auto sets = resolved_sets(s);
  for (std::size_t i = 1; i < sets.size(); ++i) EXPECT_EQ(sets[i], sets[0]);
  for (auto id : s.correct) {
    const auto& p = dynamic_cast<EigConsensusProcess&>(s.engine.process(id));
    EXPECT_EQ(sets[0][id], p.input());
  }
}

TEST(EigTest, RequiresQuorum) {
  EXPECT_THROW(EigConsensusProcess(3, 1, 0, {0.0}, {0.0}, keep_multiset()),
               invalid_argument);
}

TEST(EigTest, MalformedMessagesIgnored) {
  // Inject garbage eig messages; consistency must survive.
  class Garbage final : public sim::SyncProcess {
   public:
    explicit Garbage(std::size_t n) : n_(n) {}
    void round(std::size_t r, const std::vector<sim::Message>&,
               sim::Outbox& out) override {
      if (r > 2) return;
      sim::Message m;
      m.kind = "eig";
      m.meta = {99, -1, 7, 7};  // nonsense instance and path
      m.payload = {1e9, 1e9};
      out.broadcast(n_, m);
      sim::Message m2;
      m2.kind = "eig";
      m2.meta = {0};  // truncated path
      out.broadcast(n_, m2);
    }
    bool decided() const override { return true; }
    std::size_t n_;
  };
  sim::SyncEngine engine;
  Rng rng(41);
  std::vector<Vec> inputs;
  for (std::size_t id = 0; id < 3; ++id) {
    inputs.push_back(rng.normal_vec(2));
    engine.add(std::make_unique<EigConsensusProcess>(
        4, 1, id, inputs.back(), zeros(2), keep_multiset()));
  }
  engine.add(std::make_unique<Garbage>(4));
  engine.run(EigConsensusProcess::rounds_needed(1));
  std::vector<std::vector<Vec>> sets;
  for (std::size_t id = 0; id < 3; ++id) {
    sets.push_back(dynamic_cast<EigConsensusProcess&>(engine.process(id))
                       .resolved_inputs());
  }
  for (std::size_t i = 1; i < sets.size(); ++i) EXPECT_EQ(sets[i], sets[0]);
  for (std::size_t id = 0; id < 3; ++id) EXPECT_EQ(sets[0][id], inputs[id]);
}

TEST(EigTest, MessageComplexityMatchesTheory) {
  // One EIG instance per process: total message count for f=1, n=4 is
  // n*(n-1) initial + relays. Just sanity-check it is O(n^3) and non-zero.
  Rig s = build(4, 1, 2, {}, workload::SyncStrategy::kSilent, 43);
  const auto stats = s.engine.run(EigConsensusProcess::rounds_needed(1));
  EXPECT_GT(stats.messages, 4u * 3u);
  EXPECT_LE(stats.messages, 4u * 3u + 4u * 4u * 3u * 4u);
}

}  // namespace
}  // namespace rbvc::protocols
