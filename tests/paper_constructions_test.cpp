// Fine-grained checks of the impossibility constructions: each "Observation"
// in the paper's proofs is verified as a geometric fact about the
// corresponding LP-defined sets.
#include <gtest/gtest.h>

#include "geometry/poly2d.h"
#include "geometry/projection.h"
#include "hull/psi.h"
#include "lp/model.h"
#include "workload/adversarial_inputs.h"

namespace rbvc {
namespace {

TEST(Thm3Construction, PsiEmptyAcrossDimensions) {
  for (std::size_t d : {3u, 4u, 5u, 6u}) {
    const auto y = workload::thm3_inputs(d, 1.0, 0.5);
    EXPECT_FALSE(psi_k_point(y, 1, 2).has_value()) << "d=" << d;
  }
}

TEST(Thm3Construction, PsiEmptyForAllEpsilonGammaRatios) {
  for (double ratio : {0.1, 0.5, 0.999, 1.0}) {
    const auto y = workload::thm3_inputs(3, 2.0, 2.0 * ratio);
    EXPECT_FALSE(psi_k_point(y, 1, 2).has_value()) << "ratio " << ratio;
  }
}

TEST(Thm3Construction, Observation1NonNegativity) {
  // D = {i, j}, T = Y - {s_{d+1}}: the projections of T are non-negative in
  // coordinate i, so the projected hull lives in the upper half-plane.
  const std::size_t d = 4;
  const auto y = workload::thm3_inputs(d, 1.0, 0.5);
  std::vector<Vec> t(y.begin(), y.end() - 1);  // drop the all -gamma input
  for (const auto& dset : k_subsets(d, 2)) {
    const auto proj = project_all(t, dset);
    for (const Vec& v : proj) {
      EXPECT_GE(v[0], 0.0);
      EXPECT_GE(v[1], 0.0);
    }
  }
}

TEST(Thm3Construction, Observation2Monotonicity) {
  // D = {i, i+1}, T = Y - {s_{i+1}}: every vector in T has coordinate i+1
  // <= coordinate i.
  const std::size_t d = 4;
  const auto y = workload::thm3_inputs(d, 1.0, 0.5);
  for (std::size_t i = 0; i + 1 < d; ++i) {
    for (std::size_t j = 0; j < y.size(); ++j) {
      if (j == i + 1) continue;  // s_{i+2} in paper indexing is dropped
      EXPECT_LE(y[j][i + 1], y[j][i] + 1e-12) << "i=" << i << " j=" << j;
    }
  }
}

TEST(Thm3Construction, Observation3NonPositivity) {
  // T = Y - {s_1}: every remaining vector has first coordinate <= 0.
  const std::size_t d = 4;
  const auto y = workload::thm3_inputs(d, 1.0, 0.5);
  for (std::size_t j = 1; j < y.size(); ++j) {
    EXPECT_LE(y[j][0], 0.0) << "j=" << j;
  }
}

TEST(Thm3Construction, Observation4LastCoordinate) {
  // T = Y - {s_{d+1}}: every vector has last coordinate >= epsilon.
  const std::size_t d = 4;
  const double eps = 0.5;
  const auto y = workload::thm3_inputs(d, 1.0, eps);
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_GE(y[j][d - 1], eps) << "j=" << j;
  }
}

TEST(Thm3Construction, ControlWithExtraProcessFeasible) {
  // Add one more input (n = d+2 > (d+1)f): Psi_2 -- indeed Gamma -- becomes
  // non-empty, certifying the bound is tight.
  const std::size_t d = 3;
  auto y = workload::thm3_inputs(d, 1.0, 0.5);
  y.push_back(zeros(d));  // a (d+2)-th process
  EXPECT_TRUE(psi_k_point(y, 1, 2).has_value());
}

TEST(AppendixB, GapGrowsWithEpsilon) {
  const std::size_t d = 3;
  double prev = 0.0;
  for (double eps : {0.05, 0.1, 0.2}) {
    const auto s = workload::appendix_b_inputs(d, 1.0, eps);
    RelaxedIntersectionSpec p1, p2;
    p1.parts = workload::async_proof_subsets(s, 0);
    p1.k = 2;
    p2.parts = workload::async_proof_subsets(s, 1);
    p2.k = 2;
    const auto gap = relaxed_intersection_linf_gap(p1, p2);
    ASSERT_TRUE(gap.has_value());
    EXPECT_GE(*gap, 2.0 * eps - 1e-7) << "eps " << eps;
    EXPECT_GT(*gap, prev - 1e-9);
    prev = *gap;
  }
}

TEST(AppendixB, EachPsiIndividuallyNonEmpty) {
  // The impossibility is about *joint* epsilon-agreement: each process's
  // own output set must be non-empty (otherwise the argument would be
  // vacuous).
  const auto s = workload::appendix_b_inputs(3, 1.0, 0.2);
  for (std::size_t i = 0; i < 4; ++i) {
    RelaxedIntersectionSpec spec;
    spec.parts = workload::async_proof_subsets(s, i);
    spec.k = 2;
    EXPECT_TRUE(relaxed_intersection_point(spec).has_value()) << "i=" << i;
  }
}

TEST(AppendixC, GapScalesWithX) {
  const std::size_t d = 3;
  const double delta = 0.2;
  double prev = -1.0;
  for (double x_factor : {1.1, 1.5, 2.0}) {
    const double x = (2.0 * d * delta) * x_factor;
    const auto s = workload::appendix_c_inputs(d, x);
    RelaxedIntersectionSpec p1, p2;
    p1.parts = workload::async_proof_subsets(s, 0);
    p1.k = 0;
    p1.delta = delta;
    p1.p = kInfNorm;
    p2 = p1;
    p2.parts = workload::async_proof_subsets(s, 1);
    const auto gap = relaxed_intersection_linf_gap(p1, p2);
    ASSERT_TRUE(gap.has_value());
    EXPECT_GT(*gap, prev);
    prev = *gap;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(AppendixC, NoGapBelowThreshold) {
  // For small x the sets overlap: no epsilon-agreement violation.
  const std::size_t d = 3;
  const double delta = 0.2;
  const auto s = workload::appendix_c_inputs(d, 0.5 * delta);
  RelaxedIntersectionSpec p1, p2;
  p1.parts = workload::async_proof_subsets(s, 0);
  p1.k = 0;
  p1.delta = delta;
  p1.p = kInfNorm;
  p2 = p1;
  p2.parts = workload::async_proof_subsets(s, 1);
  const auto gap = relaxed_intersection_linf_gap(p1, p2);
  ASSERT_TRUE(gap.has_value());
  EXPECT_NEAR(*gap, 0.0, 1e-7);
}

}  // namespace
}  // namespace rbvc
