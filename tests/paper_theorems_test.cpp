// Computational certificates for the paper's theorem statements: each test
// checks the operative fact a theorem's proof hinges on, at and around the
// stated bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "hull/delta_star.h"
#include "hull/psi.h"
#include "sim/rng.h"
#include "workload/adversarial_inputs.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

// --------------------------------------------------------------------------
// Theorem 3: k-relaxed exact BVC needs n >= (d+1)f + 1 (2 <= k <= d-1).
// --------------------------------------------------------------------------

TEST(Theorem3, FeasibilityFlipsAtBound) {
  Rng rng(601);
  for (std::size_t d : {3u, 4u}) {
    // At n = d+1 the adversarial inputs make Psi_2 empty...
    const auto bad = workload::thm3_inputs(d, 1.0, 0.5);
    EXPECT_FALSE(psi_k_point(bad, 1, 2).has_value()) << "d=" << d;
    // ...whereas n = (d+1)f+1 = d+2 random inputs always give a point
    // (Gamma non-empty by Tverberg, and Gamma is inside Psi_k).
    const auto good = workload::gaussian_cloud(rng, d + 2, d);
    EXPECT_TRUE(psi_k_point(good, 1, 2).has_value()) << "d=" << d;
  }
}

TEST(Theorem3, SomeNdPlus1InputsAreFeasible) {
  // The bound is worst-case: Psi_2 emptiness at n = d+1 needs adversarial
  // structure -- it is NOT vacuous. (Empirically, random full simplices
  // also tend to have empty Psi_2; a configuration with one input at the
  // others' centroid has Gamma -- hence Psi_2 -- non-empty.)
  Rng rng(607);
  std::vector<Vec> s = workload::gaussian_cloud(rng, 3, 3);
  s.push_back(mean(s));  // 4th process sits at the centroid
  EXPECT_TRUE(psi_k_point(s, 1, 2).has_value());
  EXPECT_TRUE(gamma_point(s, 1).has_value());
}

// --------------------------------------------------------------------------
// Theorem 4 / Appendix B: async k-relaxed needs n >= (d+2)f + 1.
// --------------------------------------------------------------------------

TEST(Theorem4, ForcedLinfGapAtLeast2Eps) {
  // With n = d+2 and the Appendix B inputs, the output sets Psi^1 and Psi^2
  // of processes 1 and 2 are >= 2 epsilon apart in Linf, violating
  // epsilon-agreement.
  const double gamma = 1.0, eps = 0.2;
  for (std::size_t d : {3u, 4u}) {
    const auto s = workload::appendix_b_inputs(d, gamma, eps);
    RelaxedIntersectionSpec psi1, psi2;
    psi1.parts = workload::async_proof_subsets(s, 0);
    psi1.k = 2;
    psi2.parts = workload::async_proof_subsets(s, 1);
    psi2.k = 2;
    // Both output sets are individually non-empty...
    ASSERT_TRUE(relaxed_intersection_point(psi1).has_value()) << "d=" << d;
    ASSERT_TRUE(relaxed_intersection_point(psi2).has_value()) << "d=" << d;
    // ...but they are forced at least 2 eps apart.
    const auto gap = relaxed_intersection_linf_gap(psi1, psi2);
    ASSERT_TRUE(gap.has_value()) << "d=" << d;
    EXPECT_GE(*gap, 2.0 * eps - 1e-7) << "d=" << d;
  }
}

// --------------------------------------------------------------------------
// Theorem 5: constant-delta (delta,p) exact BVC needs n >= (d+1)f + 1.
// --------------------------------------------------------------------------

TEST(Theorem5, EmptyIntersectionAboveThreshold) {
  const double delta = 0.25;
  for (std::size_t d : {2u, 3u, 5u}) {
    const double x_bad = 2.0 * static_cast<double>(d) * delta * 1.01;
    const auto bad = workload::thm5_inputs(d, x_bad);
    EXPECT_FALSE(
        gamma_delta_point_linear(bad, 1, delta, kInfNorm).has_value())
        << "d=" << d;
    const double x_ok = 2.0 * static_cast<double>(d) * delta * 0.95;
    const auto ok = workload::thm5_inputs(d, x_ok);
    EXPECT_TRUE(gamma_delta_point_linear(ok, 1, delta, kInfNorm).has_value())
        << "d=" << d;
  }
}

TEST(Theorem5, ObservationsOneAndTwo) {
  // Observation 1: dropping input i forces coordinate i <= delta.
  // Observation 2: dropping input d+1 forces some coordinate >= x/d - delta.
  const double delta = 0.25;
  const std::size_t d = 3;
  const double x = 2.0 * d * delta * 1.5;
  const auto s = workload::thm5_inputs(d, x);
  // Witness for observation 2: every point of H(T), T = all but the origin,
  // has max coordinate >= x/d; verified via the support function on the
  // negated max -- here just check the centroid.
  Vec centroid = zeros(d);
  for (std::size_t i = 0; i < d; ++i) axpy(1.0 / d, s[i], centroid);
  double maxc = 0.0;
  for (double v : centroid) maxc = std::max(maxc, v);
  EXPECT_GE(maxc, x / static_cast<double>(d) - 1e-9);
}

// --------------------------------------------------------------------------
// Theorem 6 / Appendix C: async constant-delta needs n >= (d+2)f + 1.
// --------------------------------------------------------------------------

TEST(Theorem6, ForcedGapExceedsEps) {
  const double delta = 0.2, eps = 0.3;
  for (std::size_t d : {2u, 3u}) {
    const double x = (2.0 * d * delta + eps) * 1.05;
    const auto s = workload::appendix_c_inputs(d, x);
    RelaxedIntersectionSpec psi1, psi2;
    psi1.parts = workload::async_proof_subsets(s, 0);
    psi1.k = 0;
    psi1.delta = delta;
    psi1.p = kInfNorm;
    psi2 = psi1;
    psi2.parts = workload::async_proof_subsets(s, 1);
    ASSERT_TRUE(relaxed_intersection_point(psi1).has_value()) << "d=" << d;
    ASSERT_TRUE(relaxed_intersection_point(psi2).has_value()) << "d=" << d;
    const auto gap = relaxed_intersection_linf_gap(psi1, psi2);
    ASSERT_TRUE(gap.has_value());
    EXPECT_GT(*gap, eps) << "d=" << d;
  }
}

// --------------------------------------------------------------------------
// Theorem 9: delta* bounds for f = 1, n = d+1.
// --------------------------------------------------------------------------

TEST(Theorem9, BoundsOverRandomSimplices) {
  Rng rng(613);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t d = 3 + rep % 4;
    const auto s = workload::random_simplex(rng, d);
    const auto ds = delta_star_2(s, 1);
    const auto ee = edge_extremes(s);
    const std::size_t n = d + 1;
    EXPECT_LT(ds.value, ee.min_edge / 2.0) << "rep " << rep;
    EXPECT_LT(ds.value, ee.max_edge / static_cast<double>(n - 2))
        << "rep " << rep;
  }
}

TEST(Theorem9, FaultyFacetBound) {
  // The sharper statement: delta* < max-edge(E+)/(n-2) where E+ excludes
  // the faulty vertex -- check against every possible faulty index.
  Rng rng(617);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t d = 3 + rep % 3;
    const auto s = workload::random_simplex(rng, d);
    const auto ds = delta_star_2(s, 1);
    for (std::size_t faulty = 0; faulty <= d; ++faulty) {
      std::vector<Vec> honest;
      for (std::size_t i = 0; i <= d; ++i) {
        if (i != faulty) honest.push_back(s[i]);
      }
      const auto ee = edge_extremes(honest);
      EXPECT_LT(ds.value, ee.max_edge / static_cast<double>(d - 1))
          << "rep " << rep << " faulty " << faulty;
    }
  }
}

// --------------------------------------------------------------------------
// Theorem 12: f >= 2, n = (d+1)f: delta* < max-edge(E+)/(d-1).
// --------------------------------------------------------------------------

TEST(Theorem12, BoundOverRandomInputs) {
  Rng rng(619);
  for (int rep = 0; rep < 6; ++rep) {
    const std::size_t d = 3, f = 2, n = (d + 1) * f;
    const auto s = workload::gaussian_cloud(rng, n, d);
    const auto ds = delta_star_2(s, f);
    // Check against every possible set of f faulty indices.
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        std::vector<Vec> honest;
        for (std::size_t i = 0; i < n; ++i) {
          if (i != a && i != b) honest.push_back(s[i]);
        }
        const auto ee = edge_extremes(honest);
        EXPECT_LT(ds.value, ee.max_edge / static_cast<double>(d - 1))
            << "rep " << rep;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Theorem 14: Lp scaling of the delta* bounds.
// --------------------------------------------------------------------------

TEST(Theorem14, LpBoundScaling) {
  Rng rng(631);
  for (int rep = 0; rep < 8; ++rep) {
    const std::size_t d = 3;
    const auto s = workload::random_simplex(rng, d);
    const auto d2 = delta_star_2(s, 1);
    for (double p : {2.0, 4.0, kInfNorm}) {
      const auto dp = delta_star_p(s, 1, p);
      // delta*_p <= delta*_2 for p >= 2 ...
      EXPECT_LE(dp.value, d2.value + 1e-3) << "p=" << p;
      // ... and the scaled Theorem 9 bound holds in Lp.
      const double kappa = std::min(0.5, 1.0 / static_cast<double>(d - 1));
      const double factor =
          (p >= kInfNorm) ? std::sqrt(static_cast<double>(d))
                          : std::pow(static_cast<double>(d), 0.5 - 1.0 / p);
      const auto ee = edge_extremes(s, p);
      EXPECT_LT(dp.value, factor * kappa * ee.max_edge + 1e-6) << "p=" << p;
    }
  }
}

// --------------------------------------------------------------------------
// Conjecture 1 (empirical probe): 3f+1 <= n < (d+1)f.
// --------------------------------------------------------------------------

TEST(Conjecture1, HoldsOnRandomInstances) {
  Rng rng(641);
  std::size_t checked = 0;
  for (int rep = 0; rep < 8; ++rep) {
    const std::size_t f = 2, d = 5;
    const std::size_t n = 7 + rep % 3;  // 3f+1 = 7 .. 9 < (d+1)f = 12
    const auto s = workload::gaussian_cloud(rng, n, d);
    const auto ds = delta_star_2(s, f);
    // Conjectured bound in terms of all honest subsets.
    const double denom = static_cast<double>(n / f) - 2.0;
    if (denom <= 0) continue;
    // Worst case over every choice of f faulty ids is expensive; use the
    // weaker all-inputs edge bound, which upper-bounds every honest E+.
    const auto ee = edge_extremes(s);
    EXPECT_LT(ds.value, ee.max_edge / denom) << "n=" << n;
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace rbvc
