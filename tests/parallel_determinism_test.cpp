// The RBVC_JOBS determinism contract, end to end (ctest labels: fuzz,
// tsan): a property checked at 1 job and at 8 jobs must report the same
// verdict, the same lowest failing episode, and write a BYTE-identical
// repro file -- the parallel detection phase may reorder work, but never
// results. See docs/HARNESS.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "harness/exhaustive.h"
#include "harness/property.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  // These tests pin RBVC_JOBS (and clear the other harness knobs) to get a
  // controlled environment; snapshot and restore so nothing leaks.
  void SetUp() override {
    save("RBVC_JOBS", jobs_);
    save("RBVC_REPLAY", replay_);
    save("RBVC_FUZZ_EPISODES", episodes_);
    ::unsetenv("RBVC_REPLAY");
    ::unsetenv("RBVC_FUZZ_EPISODES");
  }
  void TearDown() override {
    restore("RBVC_JOBS", jobs_);
    restore("RBVC_REPLAY", replay_);
    restore("RBVC_FUZZ_EPISODES", episodes_);
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

 private:
  static void save(const char* name, std::pair<bool, std::string>& slot) {
    const char* v = std::getenv(name);
    slot = {v != nullptr, v ? v : ""};
  }
  static void restore(const char* name,
                      const std::pair<bool, std::string>& slot) {
    if (slot.first) {
      ::setenv(name, slot.second.c_str(), 1);
    } else {
      ::unsetenv(name);
    }
  }
  std::pair<bool, std::string> jobs_;
  std::pair<bool, std::string> replay_;
  std::pair<bool, std::string> episodes_;
};

/// Fails on several episodes (the sub-quorum override lets divergent views
/// surface as disagreement); the harness must always report the LOWEST.
harness::AsyncProperty planted_property(const std::string& repro_dir) {
  harness::AsyncProperty prop;
  prop.name = "parallel_determinism_planted";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 2;
    e.prm.use_witness = false;
    e.prm.quorum_override = 2;  // test-only hook: quorum below n - f
    e.d = 2;
    e.honest_inputs = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    e.scheduler = workload::SchedulerKind::kRandom;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = 24;
  prop.shrink_budget = 120;
  prop.repro_dir = repro_dir;
  return prop;
}

harness::AsyncProperty healthy_property() {
  harness::AsyncProperty prop;
  prop.name = "parallel_determinism_healthy";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 4;
    e.d = 2;
    e.honest_inputs = workload::gaussian_cloud(rng, 3, 2);
    e.byzantine_ids = {rng.below(4)};
    e.strategy = workload::AsyncStrategy::kOutlierInput;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = 16;
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

TEST_F(ParallelDeterminismTest, SameFailureAndByteIdenticalReproAcrossJobs) {
  // Serial reference run (jobs = 1), repro written into its own dir so the
  // parallel run cannot just overwrite-and-match trivially.
  const std::string dir1 = ::testing::TempDir() + "/jobs1";
  const std::string dir8 = ::testing::TempDir() + "/jobs8";
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir8);

  ::setenv("RBVC_JOBS", "1", 1);
  const auto serial = harness::check_property<harness::AsyncRunner>(planted_property(dir1));
  ASSERT_FALSE(serial.passed) << harness::describe(serial);
  ASSERT_FALSE(serial.repro_path.empty());

  ::setenv("RBVC_JOBS", "8", 1);
  const auto parallel =
      harness::check_property<harness::AsyncRunner>(planted_property(dir8));
  ASSERT_FALSE(parallel.passed) << harness::describe(parallel);
  ASSERT_FALSE(parallel.repro_path.empty());

  // Identical verdict: episode index, oracle message, schedule lengths.
  EXPECT_EQ(parallel.failing_episode, serial.failing_episode);
  EXPECT_EQ(parallel.episodes, serial.episodes);
  EXPECT_EQ(parallel.failure, serial.failure);
  EXPECT_EQ(parallel.original_len, serial.original_len);
  EXPECT_EQ(parallel.shrunk_len, serial.shrunk_len);

  // Byte-identical repro files (schedule, trace dump, metrics snapshot).
  EXPECT_NE(parallel.repro_path, serial.repro_path);
  EXPECT_EQ(slurp(parallel.repro_path), slurp(serial.repro_path));
}

TEST_F(ParallelDeterminismTest, JobsBeyondHardwareConcurrencyStayExact) {
  // Oversubscription must not bend the contract: a width far above
  // hardware_concurrency still reports the same lowest episode and writes
  // the same bytes as the serial run.
  const std::string dir1 = ::testing::TempDir() + "/jobs1_over";
  const std::string dir64 = ::testing::TempDir() + "/jobs64_over";
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir64);

  ::setenv("RBVC_JOBS", "1", 1);
  const auto serial = harness::check_property<harness::AsyncRunner>(planted_property(dir1));
  ASSERT_FALSE(serial.passed) << harness::describe(serial);

  const unsigned hw = std::thread::hardware_concurrency();
  const std::string wide = std::to_string(std::max(64u, 2 * hw));
  ::setenv("RBVC_JOBS", wide.c_str(), 1);
  const auto over = harness::check_property<harness::AsyncRunner>(planted_property(dir64));
  ASSERT_FALSE(over.passed) << harness::describe(over);

  EXPECT_EQ(over.failing_episode, serial.failing_episode);
  EXPECT_EQ(over.failure, serial.failure);
  EXPECT_EQ(slurp(over.repro_path), slurp(serial.repro_path));
}

/// The exhaustive-exploration counterexample path (PR 7): the planted RBC
/// equivocation from the mc boundary suite, checked at frontier width 1
/// and 16. The witness DFS finds, the minimized schedule, and the repro
/// file bytes must all be identical.
harness::ExhaustiveProperty<harness::RbcRunner> planted_mc_property(
    const std::string& repro_dir, std::size_t jobs) {
  harness::ExhaustiveProperty<harness::RbcRunner> prop;
  prop.name = "parallel_determinism_mc_planted";
  workload::RbcExperiment e;
  e.n = 4;
  e.f = 1;
  e.byzantine_ids = {3};
  e.strategy = workload::AsyncStrategy::kEquivocate;
  e.honest_inputs = {Vec{1.0}, Vec{2.0}, Vec{3.0}};
  e.broadcasters = {};
  e.quorums = {1, 1, 1};
  e.max_events = 6;
  e.seed = 5;
  prop.experiment = e;
  prop.oracle = harness::rbc_safety_oracle();
  prop.judge_truncated = true;  // safety clauses are prefix-sound
  prop.options.jobs = jobs;
  prop.repro_dir = repro_dir;
  return prop;
}

TEST_F(ParallelDeterminismTest, McCounterexampleIsByteIdenticalAcrossJobs) {
  const std::string dir1 = ::testing::TempDir() + "/mc_jobs1";
  const std::string dir16 = ::testing::TempDir() + "/mc_jobs16";
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir16);

  const auto serial =
      harness::check_property_exhaustive(planted_mc_property(dir1, 1));
  ASSERT_FALSE(serial.passed);
  ASSERT_FALSE(serial.repro_path.empty());

  const auto wide =
      harness::check_property_exhaustive(planted_mc_property(dir16, 16));
  ASSERT_FALSE(wide.passed);
  ASSERT_FALSE(wide.repro_path.empty());

  // Same violation, same witness length, same minimized schedule.
  EXPECT_EQ(wide.failure, serial.failure);
  EXPECT_EQ(wide.original_len, serial.original_len);
  EXPECT_EQ(wide.shrunk_len, serial.shrunk_len);
  // And the files agree byte for byte (schedule, trace, metrics snapshot).
  EXPECT_NE(wide.repro_path, serial.repro_path);
  EXPECT_EQ(slurp(wide.repro_path), slurp(serial.repro_path));
}

TEST_F(ParallelDeterminismTest, HealthyPropertyPassesAtAnyWidth) {
  for (const char* jobs : {"1", "3", "8"}) {
    ::setenv("RBVC_JOBS", jobs, 1);
    const auto res = harness::check_property<harness::AsyncRunner>(healthy_property());
    EXPECT_TRUE(res.passed)
        << "jobs=" << jobs << ": " << harness::describe(res);
    EXPECT_EQ(res.episodes, 16u) << "jobs=" << jobs;
    EXPECT_TRUE(res.repro_path.empty()) << "jobs=" << jobs;
  }
}

TEST_F(ParallelDeterminismTest, SeedSequenceMatchesHistoricalDerivation) {
  // The parallel engine is only byte-compatible with pre-pool runs because
  // seed_sequence reproduces the exact golden-ratio stride check_property
  // always used. Pin it.
  constexpr std::uint64_t base = 20260806;
  for (std::uint64_t ep : {0ull, 1ull, 7ull, 1000ull}) {
    EXPECT_EQ(seed_sequence(base, ep),
              base + 0x9E3779B97F4A7C15ULL * (ep + 1));
  }
}

}  // namespace
}  // namespace rbvc
