#include "opt/pocs.h"

#include <gtest/gtest.h>

#include "geometry/simplex_geometry.h"
#include "hull/relaxed_hull.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(PocsTest, FindsPointInIntersection) {
  const std::vector<std::vector<Vec>> sets = {
      {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}},
      {{1.0, 1.0}, {3.0, 1.0}, {1.0, 3.0}},
  };
  const auto p = pocs_point_within(sets, 0.0, {10.0, -10.0});
  ASSERT_TRUE(p.has_value());
  for (const auto& s : sets) {
    EXPECT_LT(project_to_hull(*p, s).distance, 1e-4);
  }
}

TEST(PocsTest, FindsFattenedWitnessAtInradius) {
  // The simplex facets intersect within delta = inradius but not below.
  Rng rng(127);
  const auto verts = workload::random_simplex(rng, 3);
  const auto g = SimplexGeometry::build(verts);
  ASSERT_TRUE(g.has_value());
  const auto sets = drop_f_subsets(verts, 1);
  const auto ok =
      pocs_point_within(sets, g->inradius() * 1.01, mean(verts));
  EXPECT_TRUE(ok.has_value());
  const auto fail =
      pocs_point_within(sets, g->inradius() * 0.5, mean(verts), {200, 1e-6});
  EXPECT_FALSE(fail.has_value());
}

TEST(PocsTest, WitnessSatisfiesAllConstraints) {
  Rng rng(131);
  const auto pts = workload::gaussian_cloud(rng, 6, 3);
  const auto sets = drop_f_subsets(pts, 1);
  const double delta = 0.8;
  const auto p = pocs_point_within(sets, delta, zeros(3));
  if (p) {
    for (const auto& s : sets) {
      EXPECT_LT(project_to_hull(*p, s).distance, delta + 1e-4);
    }
  }
}

TEST(PocsTest, ValidatesArguments) {
  EXPECT_THROW(pocs_point_within({}, 0.0, {0.0}), invalid_argument);
  EXPECT_THROW(pocs_point_within({{{0.0}}}, -1.0, {0.0}), invalid_argument);
}

}  // namespace
}  // namespace rbvc
