#include "geometry/poly2d.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace rbvc {
namespace {

TEST(Poly2dTest, HullOfSquare) {
  const std::vector<Point2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const auto hull = convex_hull_2d(pts);
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_NEAR(polygon_area(hull), 1.0, 1e-12);
}

TEST(Poly2dTest, HullDegenerateCases) {
  EXPECT_TRUE(convex_hull_2d({}).empty());
  EXPECT_EQ(convex_hull_2d({{1, 2}}).size(), 1u);
  EXPECT_EQ(convex_hull_2d({{1, 2}, {1, 2}, {1, 2}}).size(), 1u);
  const auto seg = convex_hull_2d({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_EQ(seg.size(), 2u);
}

TEST(Poly2dTest, HullIsCounterClockwise) {
  Rng rng(9);
  std::vector<Point2> pts;
  for (int i = 0; i < 30; ++i) pts.push_back({rng.normal(), rng.normal()});
  const auto hull = convex_hull_2d(pts);
  ASSERT_GE(hull.size(), 3u);
  EXPECT_GT(polygon_area(hull), 0.0);  // positive signed area == CCW
}

TEST(Poly2dTest, HalfplanesContainExactlyTheHull) {
  Rng rng(13);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<Point2> pts;
    for (int i = 0; i < 8; ++i) pts.push_back({rng.normal(), rng.normal()});
    const auto hs = hull_halfplanes_2d(pts);
    // Every input point satisfies every halfplane.
    for (const Point2& p : pts) {
      for (const Halfplane& h : hs) {
        EXPECT_LE(h.a * p.x + h.b * p.y, h.c + 1e-7) << "rep " << rep;
      }
    }
    // The centroid is inside; a far point is not.
    Point2 c{0, 0};
    for (const Point2& p : pts) {
      c.x += p.x / static_cast<double>(pts.size());
      c.y += p.y / static_cast<double>(pts.size());
    }
    EXPECT_TRUE(in_hull_2d(c, pts, 1e-7));
    EXPECT_FALSE(in_hull_2d({100.0, 100.0}, pts, 1e-7));
  }
}

TEST(Poly2dTest, HalfplanesOfPointAndSegment) {
  // Point: membership is equality in both coordinates.
  EXPECT_TRUE(in_hull_2d({2, 3}, {{2, 3}}, 1e-9));
  EXPECT_FALSE(in_hull_2d({2, 3.01}, {{2, 3}}, 1e-9));
  // Segment: on-line within the endpoints only.
  const std::vector<Point2> seg = {{0, 0}, {2, 2}};
  EXPECT_TRUE(in_hull_2d({1, 1}, seg, 1e-9));
  EXPECT_FALSE(in_hull_2d({3, 3}, seg, 1e-9));   // beyond endpoint
  EXPECT_FALSE(in_hull_2d({1, 1.1}, seg, 1e-9)); // off the line
}

TEST(Poly2dTest, ClipSquareWithDiagonal) {
  const std::vector<Point2> square = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  // Keep x + y <= 2: cuts the square into a triangle of area 2.
  const auto clipped = clip(square, {1.0, 1.0, 2.0});
  EXPECT_NEAR(polygon_area(clipped), 2.0, 1e-9);
}

TEST(Poly2dTest, IntersectOverlappingSquares) {
  const std::vector<Point2> a = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const std::vector<Point2> b = {{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  const auto inter = intersect_convex(a, b);
  EXPECT_NEAR(polygon_area(inter), 1.0, 1e-9);
}

TEST(Poly2dTest, IntersectDisjointIsEmpty) {
  const std::vector<Point2> a = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const std::vector<Point2> b = {{5, 5}, {6, 5}, {6, 6}, {5, 6}};
  EXPECT_TRUE(intersect_convex(a, b).empty());
}

TEST(Poly2dTest, PolygonAreaDegenerate) {
  EXPECT_DOUBLE_EQ(polygon_area({}), 0.0);
  EXPECT_DOUBLE_EQ(polygon_area({{1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(polygon_area({{0, 0}, {1, 1}}), 0.0);
}

}  // namespace
}  // namespace rbvc
