#include "geometry/projection.h"

#include <gtest/gtest.h>

namespace rbvc {
namespace {

TEST(ProjectionTest, KSubsetsCounts) {
  EXPECT_EQ(k_subsets(4, 2).size(), 6u);
  EXPECT_EQ(k_subsets(5, 3).size(), 10u);
  EXPECT_EQ(k_subsets(3, 3).size(), 1u);
  EXPECT_EQ(k_subsets(6, 1).size(), 6u);
}

TEST(ProjectionTest, KSubsetsLexicographicAndSorted) {
  const auto subs = k_subsets(4, 2);
  const std::vector<std::vector<std::size_t>> expect = {
      {0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(subs, expect);
}

TEST(ProjectionTest, KSubsetsValidation) {
  EXPECT_THROW(k_subsets(3, 0), invalid_argument);
  EXPECT_THROW(k_subsets(3, 4), invalid_argument);
}

TEST(ProjectionTest, ProjectMatchesPaperExample) {
  // Paper Definition 1 example: d = 4, D = {1,3} (1-indexed),
  // u = (7,-4,-2,0) -> g_D(u) = (7,-2). Zero-indexed D = {0, 2}.
  const Vec u = {7.0, -4.0, -2.0, 0.0};
  EXPECT_EQ(project(u, {0, 2}), (Vec{7.0, -2.0}));
}

TEST(ProjectionTest, ProjectAll) {
  const std::vector<Vec> s = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const auto p = project_all(s, {1});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], (Vec{2.0}));
  EXPECT_EQ(p[1], (Vec{5.0}));
}

TEST(ProjectionTest, OutOfRangeThrows) {
  EXPECT_THROW(project({1.0, 2.0}, {2}), invalid_argument);
}

}  // namespace
}  // namespace rbvc
