// Parameterized property sweeps across dimensions, fault counts, seeds, and
// workload shapes -- the "fuzzing" layer on top of the targeted unit tests.
#include <gtest/gtest.h>

#include "consensus/verifier.h"
#include "geometry/simplex_geometry.h"
#include "harness/property.h"
#include "hull/delta_star.h"
#include "hull/psi.h"
#include "workload/adversarial_inputs.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc {
namespace {

// --------------------------------------------------------------------------
// Sweep 1: delta* bounds across (d, seed).
// --------------------------------------------------------------------------

struct DimSeed {
  std::size_t d;
  std::uint64_t seed;
};

class DeltaStarSweep : public ::testing::TestWithParam<DimSeed> {};

TEST_P(DeltaStarSweep, SimplexBoundsAndWitness) {
  const auto [d, seed] = GetParam();
  Rng rng(seed);
  const auto s = workload::random_simplex(rng, d);
  const auto ds = delta_star_2(s, 1);
  const auto ee = edge_extremes(s);
  EXPECT_LT(ds.value, ee.min_edge / 2.0);
  EXPECT_LT(ds.value, ee.max_edge / static_cast<double>(d - 1));
  EXPECT_NEAR(gamma_excess(ds.point, s, 1, 2.0), ds.value, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Dims, DeltaStarSweep,
    ::testing::Values(DimSeed{3, 1}, DimSeed{3, 2}, DimSeed{3, 3},
                      DimSeed{4, 4}, DimSeed{4, 5}, DimSeed{5, 6},
                      DimSeed{5, 7}, DimSeed{6, 8}, DimSeed{7, 9},
                      DimSeed{8, 10}),
    [](const auto& info) {
      return "d" + std::to_string(info.param.d) + "_s" +
             std::to_string(info.param.seed);
    });

// --------------------------------------------------------------------------
// Sweep 2: relaxed hull containment chain over workload shapes.
// --------------------------------------------------------------------------

enum class Shape { kGaussian, kSphere, kClustered, kDegenerate };

struct ShapeSeed {
  Shape shape;
  std::uint64_t seed;
};

std::vector<Vec> make_shape(Shape shape, Rng& rng, std::size_t n,
                            std::size_t d) {
  switch (shape) {
    case Shape::kGaussian:
      return workload::gaussian_cloud(rng, n, d);
    case Shape::kSphere:
      return workload::sphere_points(rng, n, d);
    case Shape::kClustered:
      return workload::clustered(rng, n, d, 4.0);
    case Shape::kDegenerate:
      return workload::degenerate_subspace(rng, n, d, 2);
  }
  return {};
}

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kGaussian:
      return "gaussian";
    case Shape::kSphere:
      return "sphere";
    case Shape::kClustered:
      return "clustered";
    case Shape::kDegenerate:
      return "degenerate";
  }
  return "unknown";
}

class HullChainSweep : public ::testing::TestWithParam<ShapeSeed> {};

TEST_P(HullChainSweep, ContainmentChainHolds) {
  const auto [shape, seed] = GetParam();
  Rng rng(seed);
  const std::size_t d = 4, n = 6;
  const auto s = make_shape(shape, rng, n, d);
  for (int rep = 0; rep < 10; ++rep) {
    const Vec u = scale(1.5, rng.normal_vec(d));
    // Lemma 1 chain: membership at larger k implies membership at smaller.
    bool prev = in_k_relaxed_hull(u, s, d);
    for (std::size_t k = d - 1; k >= 1; --k) {
      const bool cur = in_k_relaxed_hull(u, s, k);
      if (prev) {
        EXPECT_TRUE(cur) << "k=" << k;
      }
      prev = cur;
    }
    // (delta,p) chain across delta.
    const double dist = hull_distance(u, s, 2.0);
    EXPECT_TRUE(in_delta_p_hull(u, s, dist + 1e-6, 2.0));
    if (dist > 1e-6) {
      EXPECT_FALSE(in_delta_p_hull(u, s, dist * 0.9 - 1e-9, 2.0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HullChainSweep,
    ::testing::Values(ShapeSeed{Shape::kGaussian, 21},
                      ShapeSeed{Shape::kGaussian, 22},
                      ShapeSeed{Shape::kSphere, 23},
                      ShapeSeed{Shape::kSphere, 24},
                      ShapeSeed{Shape::kClustered, 25},
                      ShapeSeed{Shape::kDegenerate, 26}),
    [](const auto& info) {
      return std::string(shape_name(info.param.shape)) + "_s" +
             std::to_string(info.param.seed);
    });

// --------------------------------------------------------------------------
// Sweep 3: ALGO end-to-end over (strategy, faulty id, seed), on the
// check_property harness: a failing draw is shrunk and written as a repro
// file, and RBVC_FUZZ_EPISODES scales the sweep for nightly runs. The
// oracle checks the *paper's* Theorem 9 budget min(min_edge/2,
// max_edge/(n-2)), tighter than the stock oracle's kappa-diameter envelope.
// --------------------------------------------------------------------------

TEST(AlgoEndToEndSweep, AgreementAndBoundedValidity) {
  harness::SyncProperty prop;
  prop.name = "algo_end_to_end_thm9";
  prop.generate = [](Rng& rng) {
    workload::SyncExperiment e;
    e.n = 5;
    e.f = 1;
    e.honest_inputs = workload::gaussian_cloud(rng, 4, 4);
    e.byzantine_ids = {rng.below(e.n)};
    constexpr workload::SyncStrategy strategies[] = {
        workload::SyncStrategy::kSilent, workload::SyncStrategy::kEquivocate,
        workload::SyncStrategy::kLyingRelay,
        workload::SyncStrategy::kOutlierInput};
    e.strategy = strategies[rng.below(4)];
    e.rule = workload::SyncRule::kAlgoRelaxed;  // serializable for repros
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = [](const workload::SyncExperiment& e,
                   const workload::SyncOutcome& out) -> std::string {
    if (out.decision_failed) {
      return "decision rule failed: " + out.failure;
    }
    if (!check_agreement(out.decisions).identical) {
      return "agreement: decisions are not bitwise identical";
    }
    const auto ee = edge_extremes(out.honest_inputs);
    const double bound = std::min(
        ee.min_edge / 2.0, ee.max_edge / static_cast<double>(e.n - 2));
    const double excess =
        delta_p_validity_excess(out.decisions, out.honest_inputs, bound, 2.0);
    if (excess > 1e-6) {
      return "Theorem 9 validity: decision leaves the budget-" +
             std::to_string(bound) + " hull by " + std::to_string(excess);
    }
    return "";
  };
  prop.episodes = harness::fuzz_episodes(8);
  prop.repro_dir = ::testing::TempDir();
  const auto res = harness::check_property<harness::SyncRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
}

// --------------------------------------------------------------------------
// Sweep 4: Psi_k feasibility frontier over n for the Thm 3 family.
// --------------------------------------------------------------------------

class PsiFrontierSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PsiFrontierSweep, AdversarialEmptyControlNonEmpty) {
  const std::size_t d = GetParam();
  const auto bad = workload::thm3_inputs(d, 1.0, 0.5);
  EXPECT_FALSE(psi_k_point(bad, 1, 2).has_value());
  Rng rng(d * 1000 + 7);
  const auto good = workload::gaussian_cloud(rng, d + 2, d);
  EXPECT_TRUE(psi_k_point(good, 1, 2).has_value());
}

INSTANTIATE_TEST_SUITE_P(Dims, PsiFrontierSweep,
                         ::testing::Values(3u, 4u, 5u, 6u, 7u),
                         [](const auto& info) {
                           return "d" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rbvc
