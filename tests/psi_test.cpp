#include "hull/psi.h"

#include <gtest/gtest.h>

#include "hull/gamma.h"
#include "sim/rng.h"
#include "workload/adversarial_inputs.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(PsiTest, ContainsGammaWitness) {
  // Gamma(Y) subset of Psi_k(Y): whenever Gamma has a point, Psi_k does too.
  Rng rng(197);
  for (int rep = 0; rep < 8; ++rep) {
    const std::size_t d = 3;
    const auto y = workload::gaussian_cloud(rng, 6, d);  // n = (d+1)f+1 + 1
    ASSERT_TRUE(gamma_point(y, 1).has_value());
    for (std::size_t k : {1u, 2u, 3u}) {
      EXPECT_TRUE(psi_k_point(y, 1, k).has_value()) << "k=" << k;
    }
  }
}

TEST(PsiTest, WitnessSatisfiesMembership) {
  Rng rng(199);
  const auto y = workload::gaussian_cloud(rng, 6, 3);
  for (std::size_t k : {1u, 2u, 3u}) {
    const auto p = psi_k_point(y, 1, k);
    ASSERT_TRUE(p.has_value());
    for (const auto& t : drop_f_subsets(y, 1)) {
      EXPECT_TRUE(in_k_relaxed_hull(*p, t, k, 1e-6)) << "k=" << k;
    }
  }
}

TEST(PsiTest, Thm3ConstructionEmptyForK2) {
  // The paper's Theorem 3 witness: Psi_2 of the gamma/epsilon matrix with
  // n = d+1, f = 1 is empty for every d >= 3.
  for (std::size_t d : {3u, 4u, 5u}) {
    const auto y = workload::thm3_inputs(d, 1.0, 0.5);
    EXPECT_FALSE(psi_k_point(y, 1, 2).has_value()) << "d=" << d;
  }
}

TEST(PsiTest, Thm3EmptinessForHigherK) {
  // Lemma 2 lifts the k = 2 emptiness to every k > 2 (H_k subset H_2).
  const auto y = workload::thm3_inputs(4, 1.0, 0.5);
  EXPECT_FALSE(psi_k_point(y, 1, 3).has_value());
  EXPECT_FALSE(psi_k_point(y, 1, 4).has_value());
}

TEST(PsiTest, Thm3ConstructionK1NonEmpty) {
  // k = 1 is solvable with n >= 3f+1, so Psi_1 must be non-empty here.
  const auto y = workload::thm3_inputs(3, 1.0, 0.5);
  EXPECT_TRUE(psi_k_point(y, 1, 1).has_value());
}

TEST(PsiTest, GeneralKPathAgreesWithFastPath) {
  // The lambda-LP (k > 2) and halfplane (k = 2) encodings must agree on
  // feasibility. Compare k = 2 fast path against a lambda encoding forced
  // through the generic spec with the same parts.
  Rng rng(211);
  for (int rep = 0; rep < 6; ++rep) {
    const auto y = workload::gaussian_cloud(rng, 5, 4);
    RelaxedIntersectionSpec fast;
    fast.parts = drop_f_subsets(y, 1);
    fast.k = 2;
    const bool fast_feasible = relaxed_intersection_point(fast).has_value();
    // k = 3 is a subset of k = 2 (Lemma 1): feasibility can only shrink.
    RelaxedIntersectionSpec general = fast;
    general.k = 3;
    const bool general_feasible =
        relaxed_intersection_point(general).has_value();
    if (general_feasible) {
      EXPECT_TRUE(fast_feasible) << "rep " << rep;
    }
  }
}

TEST(PsiTest, LinfGapZeroWhenSetsShareAPoint) {
  Rng rng(223);
  const auto y = workload::gaussian_cloud(rng, 6, 3);
  RelaxedIntersectionSpec spec;
  spec.parts = drop_f_subsets(y, 1);
  spec.k = 2;
  const auto gap = relaxed_intersection_linf_gap(spec, spec);
  ASSERT_TRUE(gap.has_value());
  EXPECT_NEAR(*gap, 0.0, 1e-7);
}

TEST(PsiTest, LinfGapBetweenDisjointBoxes) {
  // Two singleton "intersections" at distance 3 in Linf.
  RelaxedIntersectionSpec a, b;
  a.parts = {{{0.0, 0.0}}};
  a.k = 1;
  b.parts = {{{3.0, 1.0}}};
  b.k = 1;
  const auto gap = relaxed_intersection_linf_gap(a, b);
  ASSERT_TRUE(gap.has_value());
  EXPECT_NEAR(*gap, 3.0, 1e-8);
}

TEST(PsiTest, LinfGapNulloptWhenEmpty) {
  const auto y = workload::thm3_inputs(3, 1.0, 0.5);
  RelaxedIntersectionSpec empty_spec;
  empty_spec.parts = drop_f_subsets(y, 1);
  empty_spec.k = 2;
  RelaxedIntersectionSpec ok;
  ok.parts = {{{0.0, 0.0, 0.0}}};
  ok.k = 1;
  EXPECT_FALSE(relaxed_intersection_linf_gap(empty_spec, ok).has_value());
}

TEST(PsiTest, DeltaSpecFeasibility) {
  // (delta,inf) spec: the Thm 5 construction flips at x = 2 d delta.
  const double delta = 0.2;
  const std::size_t d = 3;
  RelaxedIntersectionSpec spec;
  spec.k = 0;
  spec.delta = delta;
  spec.p = kInfNorm;
  spec.parts =
      drop_f_subsets(workload::thm5_inputs(d, 2.0 * d * delta * 1.1), 1);
  EXPECT_FALSE(relaxed_intersection_point(spec).has_value());
  spec.parts =
      drop_f_subsets(workload::thm5_inputs(d, 2.0 * d * delta * 0.9), 1);
  EXPECT_TRUE(relaxed_intersection_point(spec).has_value());
}

}  // namespace
}  // namespace rbvc
