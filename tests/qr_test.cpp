#include "linalg/qr.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace rbvc {
namespace {

TEST(QrTest, OrthonormalBasisIsOrthonormal) {
  Rng rng(11);
  std::vector<Vec> vs;
  for (int i = 0; i < 4; ++i) vs.push_back(rng.normal_vec(6));
  const auto basis = orthonormal_basis(vs);
  ASSERT_EQ(basis.size(), 4u);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    for (std::size_t j = 0; j < basis.size(); ++j) {
      EXPECT_NEAR(dot(basis[i], basis[j]), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(QrTest, DropsDependentVectors) {
  const Vec a = {1.0, 0.0, 0.0};
  const Vec b = {0.0, 1.0, 0.0};
  const Vec c = add(a, b);  // dependent
  EXPECT_EQ(orthonormal_basis({a, b, c}).size(), 2u);
  EXPECT_TRUE(orthonormal_basis({zeros(3), zeros(3)}).empty());
}

TEST(QrTest, CoordsPreserveDistancesInSpan) {
  // The isometry property Theorems 8/9 Case II rely on.
  Rng rng(5);
  std::vector<Vec> frame_raw = {rng.normal_vec(7), rng.normal_vec(7),
                                rng.normal_vec(7)};
  const auto basis = orthonormal_basis(frame_raw);
  ASSERT_EQ(basis.size(), 3u);
  std::vector<Vec> pts;
  for (int i = 0; i < 5; ++i) {
    Vec p = zeros(7);
    for (const Vec& q : basis) axpy(rng.normal(), q, p);
    pts.push_back(p);
  }
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      const double ambient = dist2(pts[i], pts[j]);
      const double projected = dist2(coords_in_basis(basis, pts[i]),
                                     coords_in_basis(basis, pts[j]));
      EXPECT_NEAR(ambient, projected, 1e-9);
    }
  }
}

TEST(QrTest, DistToSpan) {
  const auto basis = orthonormal_basis({{1.0, 0.0, 0.0}, {0.0, 1.0, 0.0}});
  EXPECT_NEAR(dist2_to_span(basis, {3.0, 4.0, 5.0}), 25.0, 1e-10);
  EXPECT_NEAR(dist2_to_span(basis, {3.0, 4.0, 0.0}), 0.0, 1e-10);
}

TEST(QrTest, LeastSquares) {
  // Overdetermined fit: best line through (0,1),(1,2),(2,2.5).
  const Matrix a = Matrix::from_rows(
      {{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}});  // [intercept, slope]
  const auto x = least_squares(a, {1.0, 2.0, 2.5});
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR((*x)[0], 13.0 / 12.0, 1e-9);
  EXPECT_NEAR((*x)[1], 0.75, 1e-9);
}

TEST(QrTest, LeastSquaresRankDeficient) {
  const Matrix a = Matrix::from_rows({{1.0, 1.0}, {2.0, 2.0}});
  EXPECT_FALSE(least_squares(a, {1.0, 2.0}).has_value());
}

TEST(QrTest, AffineIndependence) {
  EXPECT_TRUE(affinely_independent({{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}}));
  EXPECT_FALSE(
      affinely_independent({{0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}}));
  // More points than d+1 are always dependent in R^d.
  EXPECT_FALSE(affinely_independent(
      {{0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0}}));
  EXPECT_TRUE(affinely_independent({{1.0, 2.0}}));
  EXPECT_TRUE(affinely_independent({{1.0, 2.0}, {1.0, 3.0}}));
  EXPECT_FALSE(affinely_independent({{1.0, 2.0}, {1.0, 2.0}}));
}

}  // namespace
}  // namespace rbvc
