// Tests for the relaxed hull definitions (paper Sec. 5) and containment
// lemmas (Lemmas 1, 6-9 structure).
#include "hull/relaxed_hull.h"

#include <gtest/gtest.h>

#include "geometry/hull.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(RelaxedHullTest, KEqualsDMatchesExactHull) {
  Rng rng(137);
  const auto s = workload::gaussian_cloud(rng, 6, 3);
  for (int rep = 0; rep < 30; ++rep) {
    const Vec u = rng.normal_vec(3);
    EXPECT_EQ(in_k_relaxed_hull(u, s, 3), in_hull(u, s)) << "rep " << rep;
  }
}

TEST(RelaxedHullTest, K1IsBoundingBox) {
  const std::vector<Vec> s = {{0.0, 0.0}, {1.0, 1.0}};
  // The 1-relaxed hull of two points is their bounding box.
  EXPECT_TRUE(in_k_relaxed_hull({1.0, 0.0}, s, 1));
  EXPECT_TRUE(in_k_relaxed_hull({0.0, 1.0}, s, 1));
  EXPECT_FALSE(in_hull({1.0, 0.0}, s));  // but not the exact hull
  EXPECT_FALSE(in_k_relaxed_hull({1.5, 0.5}, s, 1));
}

TEST(RelaxedHullTest, Lemma1ContainmentOrder) {
  // H_i(S) subset of H_j(S) for i >= j: membership at k implies at k-1.
  Rng rng(139);
  for (int rep = 0; rep < 20; ++rep) {
    const auto s = workload::gaussian_cloud(rng, 5, 4);
    const Vec u = rng.normal_vec(4);
    bool prev = in_k_relaxed_hull(u, s, 4);  // k = d (smallest set)
    for (std::size_t k = 3; k >= 1; --k) {
      const bool cur = in_k_relaxed_hull(u, s, k);
      if (prev) {
        EXPECT_TRUE(cur) << "rep " << rep << " k=" << k;
      }
      prev = cur;
    }
  }
}

TEST(RelaxedHullTest, DeltaZeroMatchesExactHull) {
  Rng rng(149);
  const auto s = workload::gaussian_cloud(rng, 6, 3);
  for (int rep = 0; rep < 20; ++rep) {
    const Vec u = rng.normal_vec(3);
    EXPECT_EQ(in_delta_p_hull(u, s, 0.0, 2.0), in_hull(u, s, 1e-7))
        << "rep " << rep;
  }
}

TEST(RelaxedHullTest, DeltaMonotone) {
  // Lemmas 6-9 rely on H_(delta',p) subset of H_(delta,p) for delta' <= delta.
  Rng rng(151);
  const auto s = workload::gaussian_cloud(rng, 5, 3);
  for (int rep = 0; rep < 20; ++rep) {
    const Vec u = scale(2.0, rng.normal_vec(3));
    bool prev = false;
    for (double delta : {0.0, 0.2, 0.5, 1.0, 3.0, 10.0}) {
      const bool cur = in_delta_p_hull(u, s, delta, 2.0);
      if (prev) {
        EXPECT_TRUE(cur) << "rep " << rep << " delta=" << delta;
      }
      prev = cur;
    }
  }
}

TEST(RelaxedHullTest, DeltaHullRespectsNorm) {
  const std::vector<Vec> s = {{0.0, 0.0}};
  const Vec u = {1.0, 1.0};  // L2 dist sqrt(2), L1 dist 2, Linf dist 1
  EXPECT_TRUE(in_delta_p_hull(u, s, 1.0, kInfNorm));
  EXPECT_FALSE(in_delta_p_hull(u, s, 1.0, 2.0));
  EXPECT_FALSE(in_delta_p_hull(u, s, 1.3, 1.0));
  EXPECT_TRUE(in_delta_p_hull(u, s, 2.0, 1.0));
}

TEST(RelaxedHullTest, ExactHullInsideEveryRelaxation) {
  // Sec. 5.3: both relaxed hulls contain H(S).
  Rng rng(157);
  for (int rep = 0; rep < 15; ++rep) {
    const auto s = workload::gaussian_cloud(rng, 6, 3);
    // Random point of H(S):
    Vec w(6);
    double sum = 0.0;
    for (double& v : w) {
      v = rng.uniform(0.0, 1.0);
      sum += v;
    }
    Vec p = zeros(3);
    for (std::size_t i = 0; i < 6; ++i) axpy(w[i] / sum, s[i], p);
    for (std::size_t k = 1; k <= 3; ++k) {
      EXPECT_TRUE(in_k_relaxed_hull(p, s, k, 1e-7)) << "k=" << k;
    }
    EXPECT_TRUE(in_delta_p_hull(p, s, 0.0, 2.0, 1e-6));
  }
}

TEST(RelaxedHullTest, SubsetsMinusF) {
  EXPECT_EQ(subsets_minus_f(5, 1).size(), 5u);
  EXPECT_EQ(subsets_minus_f(6, 2).size(), 15u);
  EXPECT_THROW(subsets_minus_f(3, 3), invalid_argument);
  const auto sets = drop_f_subsets({{1.0}, {2.0}, {3.0}}, 1);
  ASSERT_EQ(sets.size(), 3u);
  for (const auto& s : sets) EXPECT_EQ(s.size(), 2u);
}

TEST(RelaxedHullTest, InvalidKThrows) {
  const std::vector<Vec> s = {{1.0, 2.0}};
  EXPECT_THROW(in_k_relaxed_hull({0.0, 0.0}, s, 0), invalid_argument);
  EXPECT_THROW(in_k_relaxed_hull({0.0, 0.0}, s, 3), invalid_argument);
  EXPECT_THROW(in_delta_p_hull({0.0, 0.0}, s, -0.1, 2.0), invalid_argument);
}

}  // namespace
}  // namespace rbvc
