// Replay determinism: recording an async run's schedule and re-executing it
// under a ReplayScheduler must reproduce the identical Trace event sequence
// and identical decided vectors, for both the random and the adversarial
// laggard schedulers. Sync runs are deterministic given the config, so
// their recorded round checkpoints must match across re-runs.
#include <gtest/gtest.h>

#include "consensus/algo_relaxed.h"
#include "sim/schedule_log.h"
#include "workload/generators.h"
#include "workload/runner.h"

namespace rbvc {
namespace {

workload::AsyncExperiment base_async(std::uint64_t seed,
                                     workload::SchedulerKind kind) {
  workload::AsyncExperiment e;
  e.prm.n = 5;
  e.prm.f = 1;
  e.prm.rounds = 3;
  e.d = 2;
  Rng rng(seed);
  e.honest_inputs = workload::gaussian_cloud(rng, 4, e.d);
  e.byzantine_ids = {2};
  e.strategy = workload::AsyncStrategy::kOutlierInput;
  e.scheduler = kind;
  e.seed = seed;
  e.capture_trace = true;
  return e;
}

void expect_identical_runs(const workload::AsyncOutcome& a,
                           const workload::AsyncOutcome& b) {
  ASSERT_FALSE(a.failed);
  ASSERT_FALSE(b.failed);
  EXPECT_EQ(a.stats.deliveries, b.stats.deliveries);
  EXPECT_EQ(a.stats.sends, b.stats.sends);
  // Bitwise-identical decisions (Vec is std::vector<double>).
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.round0_deltas, b.round0_deltas);
  // Identical event sequences, not merely equal counts.
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  EXPECT_TRUE(a.trace == b.trace);
}

TEST(ReplayTest, RandomSchedulerRoundTrips) {
  auto rec = base_async(41, workload::SchedulerKind::kRandom);
  sim::ScheduleLog log;
  rec.record = &log;
  const auto first = workload::run_async_experiment(rec);
  ASSERT_FALSE(first.failed);
  ASSERT_GT(log.pick_count(), 0u);
  EXPECT_EQ(log.pick_count(), first.stats.deliveries);

  auto rep = base_async(41, workload::SchedulerKind::kRandom);
  rep.replay = &log;
  const auto second = workload::run_async_experiment(rep);
  expect_identical_runs(first, second);
}

TEST(ReplayTest, LaggardSchedulerRoundTrips) {
  auto rec = base_async(97, workload::SchedulerKind::kLaggard);
  sim::ScheduleLog log;
  rec.record = &log;
  const auto first = workload::run_async_experiment(rec);
  ASSERT_FALSE(first.failed);

  auto rep = base_async(97, workload::SchedulerKind::kLaggard);
  rep.replay = &log;
  const auto second = workload::run_async_experiment(rep);
  expect_identical_runs(first, second);
}

TEST(ReplayTest, ReplayingRecordsTheSameScheduleAgain) {
  auto rec = base_async(7, workload::SchedulerKind::kRandom);
  sim::ScheduleLog log;
  rec.record = &log;
  (void)workload::run_async_experiment(rec);

  auto rep = base_async(7, workload::SchedulerKind::kRandom);
  const sim::ScheduleLog original = log;
  sim::ScheduleLog rerecorded;
  rep.replay = &original;
  rep.record = &rerecorded;
  (void)workload::run_async_experiment(rep);
  EXPECT_TRUE(original == rerecorded);
}

TEST(ReplayTest, ScheduleLogSerializationRoundTrips) {
  sim::ScheduleLog log;
  log.add_pick(3);
  log.add_pick(0);
  log.add_round(12);
  log.add_pick(17);
  const std::string text = log.serialize();
  EXPECT_EQ(text, "p3 p0 r12 p17");
  EXPECT_TRUE(sim::ScheduleLog::parse(text) == log);
  EXPECT_TRUE(sim::ScheduleLog::parse("").empty());
  EXPECT_EQ(log.pick_count(), 3u);
}

TEST(ReplayTest, TruncatedAndEditedLogsStillReplaySafely) {
  auto rec = base_async(123, workload::SchedulerKind::kRandom);
  sim::ScheduleLog log;
  rec.record = &log;
  const auto first = workload::run_async_experiment(rec);
  ASSERT_FALSE(first.failed);

  // Chop off the second half and wildly inflate one index: replay must
  // still terminate with every correct process deciding (FIFO fallback and
  // index wrapping keep the schedule valid and fair).
  sim::ScheduleLog edited = log;
  edited.erase_range(edited.size() / 2, edited.size());
  if (!edited.empty()) edited.set_value(0, 1'000'000'007ULL);
  auto rep = base_async(123, workload::SchedulerKind::kRandom);
  rep.replay = &edited;
  const auto second = workload::run_async_experiment(rep);
  EXPECT_FALSE(second.failed);
  EXPECT_TRUE(second.stats.all_decided);
}

TEST(ReplayTest, SyncRunsReproduceIdenticalCheckpointsAndTraces) {
  auto make = [] {
    workload::SyncExperiment e;
    e.n = 5;
    e.f = 1;
    Rng rng(11);
    e.honest_inputs = workload::gaussian_cloud(rng, 4, 2);
    e.byzantine_ids = {1};
    e.strategy = workload::SyncStrategy::kEquivocate;
    e.decision = consensus::algo_decision(1);
    e.seed = 77;
    e.capture_trace = true;
    return e;
  };

  auto a = make();
  sim::ScheduleLog log_a;
  a.record = &log_a;
  const auto out_a = workload::run_sync_experiment(a);

  auto b = make();
  sim::ScheduleLog log_b;
  b.record = &log_b;
  const auto out_b = workload::run_sync_experiment(b);

  ASSERT_FALSE(out_a.decision_failed);
  EXPECT_EQ(log_a.size(), out_a.stats.rounds);
  EXPECT_TRUE(log_a == log_b);
  EXPECT_EQ(out_a.decisions, out_b.decisions);
  EXPECT_TRUE(out_a.trace == out_b.trace);
  ASSERT_FALSE(out_a.trace.events().empty());
}

}  // namespace
}  // namespace rbvc
