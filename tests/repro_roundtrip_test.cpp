// Schema v3 repro envelope: field-exact round-trips for every mode
// (including the optional metrics snapshot), the mode-independent peek,
// legacy v2/v1 acceptance, and the reject-don't-misreplay contract for
// unknown versions, unknown modes, and mode mismatches. (The async
// round-trip has field-level coverage in harness_property_test.cpp; here it
// participates in the envelope checks.)
#include <gtest/gtest.h>

#include "harness/repro.h"
#include "obs/metrics.h"

namespace rbvc {
namespace {

TEST(ReproRoundtripTest, SerializedHeaderCarriesVersionAndMode) {
  harness::SyncRepro rep;
  rep.property = "p";
  rep.experiment.n = 4;
  rep.experiment.rule = workload::SyncRule::kAlgoRelaxed;
  const std::string text = harness::serialize_repro(rep);
  EXPECT_EQ(text.rfind("rbvc-repro v3\n", 0), 0u);
  EXPECT_NE(text.find("\nmode sync\n"), std::string::npos);

  const auto info = harness::peek_repro(text);
  EXPECT_EQ(info.version, harness::kReproVersion);
  EXPECT_EQ(info.mode, harness::ReproMode::kSync);
  EXPECT_EQ(info.property, "p");
}

TEST(ReproRoundtripTest, SyncRoundTripsLosslessly) {
  harness::SyncRepro rep;
  rep.property = "sync_prop";
  rep.failure = "agreement: multi\nline";
  rep.experiment.n = 5;
  rep.experiment.f = 2;
  rep.experiment.honest_inputs = {{0.1, -2.5}, {1e-17, 3.0}, {4.0, 5.0}};
  rep.experiment.byzantine_ids = {1, 3};
  rep.experiment.strategy = workload::SyncStrategy::kBadChainRelay;
  rep.experiment.rule = workload::SyncRule::kKRelaxed;
  rep.experiment.k = 2;
  rep.experiment.backend = workload::SyncBackend::kDolevStrong;
  rep.experiment.validate_chains = false;
  rep.experiment.seed = 0xABCDEF0123ULL;
  rep.schedule.add_round(12);
  rep.schedule.add_round(9);
  rep.trace_dump = "round 0: 12 messages\n";

  const auto parsed =
      harness::parse_sync_repro(harness::serialize_repro(rep));
  EXPECT_EQ(parsed.property, rep.property);
  EXPECT_EQ(parsed.failure, rep.failure);
  EXPECT_EQ(parsed.experiment.n, rep.experiment.n);
  EXPECT_EQ(parsed.experiment.f, rep.experiment.f);
  EXPECT_EQ(parsed.experiment.honest_inputs, rep.experiment.honest_inputs);
  EXPECT_EQ(parsed.experiment.byzantine_ids, rep.experiment.byzantine_ids);
  EXPECT_EQ(parsed.experiment.strategy, rep.experiment.strategy);
  EXPECT_EQ(parsed.experiment.rule, rep.experiment.rule);
  EXPECT_EQ(parsed.experiment.k, rep.experiment.k);
  EXPECT_EQ(parsed.experiment.backend, rep.experiment.backend);
  EXPECT_EQ(parsed.experiment.validate_chains,
            rep.experiment.validate_chains);
  EXPECT_EQ(parsed.experiment.seed, rep.experiment.seed);
  EXPECT_TRUE(parsed.schedule == rep.schedule);
  EXPECT_EQ(parsed.trace_dump, rep.trace_dump);
  // The parsed experiment is runnable without a closure.
  EXPECT_FALSE(parsed.experiment.decision);
}

TEST(ReproRoundtripTest, RbcRoundTripsLosslessly) {
  harness::RbcRepro rep;
  rep.property = "rbc_prop";
  rep.failure = "equivocation delivered";
  rep.experiment.n = 4;
  rep.experiment.f = 1;
  rep.experiment.honest_inputs = {{1.0, 2.0}, {3.0, 4.0}, {-0.5, 0.25}};
  rep.experiment.byzantine_ids = {3};
  rep.experiment.strategy = workload::AsyncStrategy::kEquivocate;
  rep.experiment.scheduler = workload::SchedulerKind::kLaggard;
  rep.experiment.quorums.echo = 1;
  rep.experiment.quorums.ready_amplify = 1;
  rep.experiment.quorums.ready_deliver = 1;
  rep.experiment.seed = 77;
  rep.experiment.max_events = 4321;
  rep.schedule.add_pick(5);
  rep.schedule.add_pick(0);

  const auto parsed = harness::parse_rbc_repro(harness::serialize_repro(rep));
  EXPECT_EQ(parsed.property, rep.property);
  EXPECT_EQ(parsed.experiment.n, rep.experiment.n);
  EXPECT_EQ(parsed.experiment.f, rep.experiment.f);
  EXPECT_EQ(parsed.experiment.honest_inputs, rep.experiment.honest_inputs);
  EXPECT_EQ(parsed.experiment.byzantine_ids, rep.experiment.byzantine_ids);
  EXPECT_EQ(parsed.experiment.strategy, rep.experiment.strategy);
  EXPECT_EQ(parsed.experiment.scheduler, rep.experiment.scheduler);
  EXPECT_EQ(parsed.experiment.quorums.echo, rep.experiment.quorums.echo);
  EXPECT_EQ(parsed.experiment.quorums.ready_amplify,
            rep.experiment.quorums.ready_amplify);
  EXPECT_EQ(parsed.experiment.quorums.ready_deliver,
            rep.experiment.quorums.ready_deliver);
  EXPECT_EQ(parsed.experiment.seed, rep.experiment.seed);
  EXPECT_EQ(parsed.experiment.max_events, rep.experiment.max_events);
  EXPECT_TRUE(parsed.schedule == rep.schedule);
}

TEST(ReproRoundtripTest, DsRoundTripsLosslessly) {
  harness::DsRepro rep;
  rep.property = "ds_prop";
  rep.failure = "identical-extracted-sets";
  rep.experiment.n = 4;
  rep.experiment.f = 1;
  rep.experiment.honest_inputs = {{9.0}, {-0.125}, {3.5}};
  rep.experiment.byzantine_ids = {2};
  rep.experiment.strategy = workload::SyncStrategy::kBadChainRelay;
  rep.experiment.validate_chains = false;
  rep.experiment.seed = 13;
  rep.schedule.add_round(6);

  const auto parsed = harness::parse_ds_repro(harness::serialize_repro(rep));
  EXPECT_EQ(parsed.property, rep.property);
  EXPECT_EQ(parsed.experiment.n, rep.experiment.n);
  EXPECT_EQ(parsed.experiment.f, rep.experiment.f);
  EXPECT_EQ(parsed.experiment.honest_inputs, rep.experiment.honest_inputs);
  EXPECT_EQ(parsed.experiment.byzantine_ids, rep.experiment.byzantine_ids);
  EXPECT_EQ(parsed.experiment.strategy, rep.experiment.strategy);
  EXPECT_EQ(parsed.experiment.validate_chains,
            rep.experiment.validate_chains);
  EXPECT_EQ(parsed.experiment.seed, rep.experiment.seed);
  EXPECT_TRUE(parsed.schedule == rep.schedule);
}

TEST(ReproRoundtripTest, MetricsSnapshotRoundTripsByteForByte) {
  obs::Registry reg;
  reg.counter("sim.sync.messages_sent").inc(48);
  reg.gauge("workload.sync.achieved_delta").set(0.1234);
  reg.histogram("lp.seconds", obs::time_buckets()).observe(2.5e-4);

  harness::SyncRepro rep;
  rep.property = "with_metrics";
  rep.experiment.n = 4;
  rep.experiment.rule = workload::SyncRule::kAlgoRelaxed;
  rep.metrics_json = reg.dump_json();

  const std::string text = harness::serialize_repro(rep);
  EXPECT_NE(text.find("\nmetrics "), std::string::npos);
  const auto parsed = harness::parse_sync_repro(text);
  EXPECT_EQ(parsed.metrics_json, rep.metrics_json);
  // The embedded snapshot is itself a loadable registry.
  const obs::Registry back = obs::Registry::parse(parsed.metrics_json);
  EXPECT_EQ(back.dump_json(), rep.metrics_json);

  // A snapshot-free repro stays snapshot-free (no empty `metrics` line).
  rep.metrics_json.clear();
  const std::string bare = harness::serialize_repro(rep);
  EXPECT_EQ(bare.find("\nmetrics "), std::string::npos);
  EXPECT_EQ(harness::parse_sync_repro(bare).metrics_json, "");
}

TEST(ReproRoundtripTest, LegacyV2FilesLoadWithoutMetrics) {
  harness::DsRepro rep;
  rep.property = "old_ds";
  rep.experiment.n = 4;
  rep.experiment.f = 1;
  rep.experiment.honest_inputs = {{1.0}, {2.0}, {3.0}};
  rep.experiment.byzantine_ids = {0};
  rep.schedule.add_round(6);
  // A v2 file is exactly a v3 file minus the metrics line and header bump.
  std::string text = harness::serialize_repro(rep);
  ASSERT_EQ(text.rfind("rbvc-repro v3\n", 0), 0u);
  text.replace(0, std::string("rbvc-repro v3").size(), "rbvc-repro v2");

  const auto info = harness::peek_repro(text);
  EXPECT_EQ(info.version, 2);
  EXPECT_EQ(info.mode, harness::ReproMode::kDs);
  const auto parsed = harness::parse_ds_repro(text);
  EXPECT_EQ(parsed.property, rep.property);
  EXPECT_EQ(parsed.experiment.honest_inputs, rep.experiment.honest_inputs);
  EXPECT_TRUE(parsed.schedule == rep.schedule);
  EXPECT_EQ(parsed.metrics_json, "");
}

TEST(ReproRoundtripTest, LegacyV1FilesAreImplicitlyAsync) {
  const std::string v1 =
      "rbvc-async-repro v1\n"
      "property old\n"
      "n 4\nf 1\nd 2\nseed 9\n"
      "input 1 2\ninput 3 4\ninput 5 6\ninput 7 8\n"
      "schedule p1 p0\n";
  const auto info = harness::peek_repro(v1);
  EXPECT_EQ(info.version, 1);
  EXPECT_EQ(info.mode, harness::ReproMode::kAsync);
  const auto rep = harness::parse_async_repro(v1);
  EXPECT_EQ(rep.experiment.prm.n, 4u);
  EXPECT_EQ(rep.schedule.size(), 2u);
}

TEST(ReproRoundtripTest, UnknownVersionsAndModesAreRejected) {
  EXPECT_THROW(harness::peek_repro("rbvc-repro v4\nmode async\n"),
               invalid_argument);
  EXPECT_THROW(harness::parse_async_repro("rbvc-repro v4\nmode async\nn 4\n"),
               invalid_argument);
  EXPECT_THROW(harness::peek_repro("rbvc-repro v2\nmode warp\n"),
               invalid_argument);
  // v2 without a mode line is ambiguous, not implicitly anything.
  EXPECT_THROW(harness::peek_repro("rbvc-repro v2\nproperty x\n"),
               invalid_argument);
}

TEST(ReproRoundtripTest, ModeMismatchIsRejected) {
  harness::DsRepro ds;
  ds.property = "x";
  ds.experiment.n = 4;
  const std::string text = harness::serialize_repro(ds);
  EXPECT_NO_THROW(harness::parse_ds_repro(text));
  EXPECT_THROW(harness::parse_sync_repro(text), invalid_argument);
  EXPECT_THROW(harness::parse_rbc_repro(text), invalid_argument);
  EXPECT_THROW(harness::parse_async_repro(text), invalid_argument);
}

// Captures the message of whatever `fn` throws ("" if it does not throw),
// so the negative-path tests can assert the error is actionable, not just
// that *something* went wrong.
template <class Fn>
std::string thrown_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::exception& ex) {
    return ex.what();
  }
  return {};
}

TEST(ReproRoundtripTest, TruncatedFilesFailWithLineLevelErrors) {
  // Cut before the header: empty input.
  EXPECT_NE(thrown_message([] { harness::parse_sync_repro(""); })
                .find("empty input"),
            std::string::npos);
  // Cut after the header: the mode tag is gone.
  EXPECT_NE(thrown_message([] {
              harness::parse_sync_repro("rbvc-repro v3\n");
            }).find("missing its `mode` line"),
            std::string::npos);
  // Cut after the envelope prologue: the experiment block (n first) is
  // gone, and the parser must say which field, not replay a zero-process
  // experiment.
  for (const char* text : {"rbvc-repro v3\nmode sync\n",
                           "rbvc-repro v3\nmode sync\nproperty cut\n"}) {
    EXPECT_NE(thrown_message([text] { harness::parse_sync_repro(text); })
                  .find("missing n"),
              std::string::npos)
        << text;
  }
  // Same contract on the other mode-specific parsers.
  EXPECT_NE(thrown_message([] {
              harness::parse_rbc_repro("rbvc-repro v3\nmode rbc\n");
            }).find("missing n"),
            std::string::npos);
  EXPECT_NE(thrown_message([] {
              harness::parse_ds_repro("rbvc-repro v3\nmode ds\n");
            }).find("missing n"),
            std::string::npos);
}

TEST(ReproRoundtripTest, CorruptMetricsSnapshotsAreRejectedAtLoad) {
  harness::SyncRepro rep;
  rep.property = "bad_metrics";
  rep.experiment.n = 4;
  rep.experiment.rule = workload::SyncRule::kAlgoRelaxed;

  // Not JSON at all.
  rep.metrics_json = "definitely not json";
  const std::string garbled = harness::serialize_repro(rep);
  EXPECT_THROW(harness::parse_sync_repro(garbled), invalid_argument);
  EXPECT_NE(thrown_message([&] { harness::parse_sync_repro(garbled); })
                .find("bad metrics line"),
            std::string::npos);

  // Well-formed JSON, unknown structural key: the registry schema is
  // strict, so a snapshot this build cannot interpret is an error, not a
  // silent drop.
  rep.metrics_json =
      R"({"version": 1, "tallies": {}, "gauges": {}, "histograms": {}})";
  EXPECT_NE(thrown_message([&] {
              harness::parse_sync_repro(harness::serialize_repro(rep));
            }).find("bad metrics line"),
            std::string::npos);

  // Unknown snapshot *version*: same.
  rep.metrics_json =
      R"({"version": 99, "counters": {}, "gauges": {}, "histograms": {}})";
  EXPECT_NE(thrown_message([&] {
              harness::parse_sync_repro(harness::serialize_repro(rep));
            }).find("bad metrics line"),
            std::string::npos);
}

TEST(ReproRoundtripTest, UnknownMetricNamesAreForwardCompatible) {
  // Metric *names* are open-ended (a newer build may export counters this
  // one has never heard of); only the structural schema is strict.
  obs::Registry reg;
  reg.counter("mc.shiny.future_counter").inc(3);
  reg.gauge("exotic.subsystem.level").set(-1.5);

  harness::SyncRepro rep;
  rep.property = "future_metrics";
  rep.experiment.n = 4;
  rep.experiment.rule = workload::SyncRule::kAlgoRelaxed;
  rep.metrics_json = reg.dump_json();
  const auto parsed = harness::parse_sync_repro(harness::serialize_repro(rep));
  EXPECT_EQ(parsed.metrics_json, rep.metrics_json);
}

TEST(ReproRoundtripTest, ModeMismatchErrorNamesBothModes) {
  harness::RbcRepro rbc;
  rbc.property = "x";
  rbc.experiment.n = 4;
  const std::string text = harness::serialize_repro(rbc);
  const std::string msg =
      thrown_message([&] { harness::parse_sync_repro(text); });
  EXPECT_NE(msg.find("file mode is `rbc`"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expects `sync`"), std::string::npos) << msg;
}

TEST(ReproRoundtripTest, RbcBroadcastersRoundTrip) {
  harness::RbcRepro rep;
  rep.property = "bcast";
  rep.experiment.n = 4;
  rep.experiment.f = 1;
  rep.experiment.honest_inputs = {{1.0}, {2.0}, {3.0}};
  rep.experiment.byzantine_ids = {3};

  // Default "everyone broadcasts" sentinel: omitted from the file (so
  // pre-existing repro files round-trip byte-for-byte), restored on load.
  std::string text = harness::serialize_repro(rep);
  EXPECT_EQ(text.find("broadcasters"), std::string::npos);
  EXPECT_EQ(harness::parse_rbc_repro(text).experiment.broadcasters,
            rep.experiment.broadcasters);

  // An explicit subset is written and read back verbatim.
  rep.experiment.broadcasters = {0, 2};
  text = harness::serialize_repro(rep);
  EXPECT_NE(text.find("broadcasters 0 2"), std::string::npos);
  EXPECT_EQ(harness::parse_rbc_repro(text).experiment.broadcasters,
            (std::vector<std::size_t>{0, 2}));

  // The explicit empty set ("only the adversary broadcasts", the planted
  // mc instance) serializes as a bare line and parses back to empty --
  // it must NOT collapse into the everyone-broadcasts sentinel.
  rep.experiment.broadcasters = {};
  text = harness::serialize_repro(rep);
  EXPECT_NE(text.find("\nbroadcasters\n"), std::string::npos);
  EXPECT_EQ(harness::parse_rbc_repro(text).experiment.broadcasters,
            (std::vector<std::size_t>{}));
}

TEST(ReproRoundtripTest, CustomDecisionClosuresCannotSerialize) {
  harness::SyncRepro rep;
  rep.experiment.n = 4;
  rep.experiment.rule = workload::SyncRule::kCustom;
  EXPECT_THROW(harness::serialize_repro(rep), invalid_argument);
}

}  // namespace
}  // namespace rbvc
