#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace rbvc {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, DoublesInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, BelowInRange) {
  Rng r(9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[r.below(5)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform
}

TEST(RngTest, NormalMoments) {
  Rng r(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.normal();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ForkIndependence) {
  Rng r(13);
  Rng child = r.fork();
  // The child's stream is deterministic given the parent state.
  Rng r2(13);
  Rng child2 = r2.fork();
  EXPECT_EQ(child.next_u64(), child2.next_u64());
}

TEST(RngTest, VecHelpers) {
  Rng r(15);
  EXPECT_EQ(r.normal_vec(4).size(), 4u);
  const Vec u = r.uniform_vec(3, 2.0, 5.0);
  for (double v : u) {
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, ShufflePermutes) {
  Rng r(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

}  // namespace
}  // namespace rbvc
