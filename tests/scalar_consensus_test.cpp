#include "protocols/scalar_consensus.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace rbvc::protocols {
namespace {

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.0);  // lower median
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
  EXPECT_THROW(median({}), invalid_argument);
}

TEST(MedianTest, ResistsOutliers) {
  // With n >= 2f+1, f forged values cannot push the median outside the
  // correct values' range -- the validity core of 1-relaxed consensus.
  Rng rng(47);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t f = 1 + rep % 2;
    const std::size_t n = 3 * f + 1;
    std::vector<double> vals;
    double lo = 1e300, hi = -1e300;
    for (std::size_t i = 0; i < n - f; ++i) {
      vals.push_back(rng.normal());
      lo = std::min(lo, vals.back());
      hi = std::max(hi, vals.back());
    }
    for (std::size_t i = 0; i < f; ++i) {
      vals.push_back(rng.normal() * 1e6);  // outliers
    }
    const double m = median(vals);
    EXPECT_GE(m, lo) << "rep " << rep;
    EXPECT_LE(m, hi) << "rep " << rep;
  }
}

TEST(TrimmedMeanTest, DropsExtremes) {
  EXPECT_DOUBLE_EQ(trimmed_mean({1.0, 2.0, 3.0, 100.0, -100.0}, 1), 2.0);
  EXPECT_THROW(trimmed_mean({1.0, 2.0}, 1), invalid_argument);
}

TEST(TrimmedMeanTest, ResistsOutliers) {
  Rng rng(53);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t f = 1;
    std::vector<double> vals;
    double lo = 1e300, hi = -1e300;
    for (int i = 0; i < 4; ++i) {
      vals.push_back(rng.normal());
      lo = std::min(lo, vals.back());
      hi = std::max(hi, vals.back());
    }
    vals.push_back(1e9);
    const double m = trimmed_mean(vals, f);
    EXPECT_GE(m, lo);
    EXPECT_LE(m, hi);
  }
}

TEST(CoordinatewiseTest, Median) {
  const std::vector<Vec> s = {{1.0, 10.0}, {2.0, 30.0}, {3.0, 20.0}};
  EXPECT_EQ(coordinatewise_median(s), (Vec{2.0, 20.0}));
  EXPECT_THROW(coordinatewise_median({}), invalid_argument);
}

TEST(CoordinatewiseTest, MedianIsInBoundingBoxOfCorrect) {
  // Per-coordinate validity: the definition of 1-relaxed validity.
  Rng rng(59);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t d = 3, f = 1, n = 4;
    std::vector<Vec> s;
    for (std::size_t i = 0; i < n - f; ++i) s.push_back(rng.normal_vec(d));
    s.push_back(scale(1e6, rng.normal_vec(d)));  // forged entry
    const Vec m = coordinatewise_median(s);
    for (std::size_t c = 0; c < d; ++c) {
      double lo = 1e300, hi = -1e300;
      for (std::size_t i = 0; i < n - f; ++i) {
        lo = std::min(lo, s[i][c]);
        hi = std::max(hi, s[i][c]);
      }
      EXPECT_GE(m[c], lo) << "rep " << rep;
      EXPECT_LE(m[c], hi) << "rep " << rep;
    }
  }
}

TEST(CoordinatewiseTest, TrimmedMean) {
  const std::vector<Vec> s = {{1.0, 0.0}, {2.0, 0.0}, {3.0, 0.0},
                              {100.0, 9.0}, {-100.0, -9.0}};
  EXPECT_EQ(coordinatewise_trimmed_mean(s, 1), (Vec{2.0, 0.0}));
}

}  // namespace
}  // namespace rbvc::protocols
