// Scheduler fairness: the liveness results of the paper's asynchronous
// model (and the comment contract in sim/async_engine.h) require that no
// pending message is starved forever. The adversarial LaggardScheduler is
// the risky one: it delays laggard-touching messages but must still leak
// them out with its configured probability.
#include <gtest/gtest.h>

#include "sim/async_engine.h"

namespace rbvc::sim {
namespace {

Message make_msg(ProcessId from, ProcessId to, const char* kind) {
  Message m;
  m.from = from;
  m.to = to;
  m.kind = kind;
  return m;
}

// A lagged message competing against a constantly replenished pool of fast
// messages must still be delivered within a bounded number of picks. With
// the default 2% leak the expected wait is ~200 picks; the bound leaves
// orders of magnitude of slack and the seeds make the check deterministic.
TEST(SchedulerFairnessTest, LaggardEventuallyDeliversLaggedMessages) {
  constexpr std::size_t kBound = 50'000;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    LaggardScheduler sched(seed, {0});
    std::vector<Message> pending;
    pending.push_back(make_msg(0, 1, "lag"));  // touches laggard process 0
    for (ProcessId i = 1; i <= 3; ++i) {
      pending.push_back(make_msg(i, i + 1, "fast"));
    }
    std::size_t waited = 0;
    bool delivered = false;
    while (waited < kBound) {
      const std::size_t idx = sched.pick(pending);
      ASSERT_LT(idx, pending.size());
      ++waited;
      if (pending[idx].kind == "lag") {
        delivered = true;
        break;
      }
      // The adversary keeps the fast lane saturated: every delivered fast
      // message is immediately replaced by a fresh one.
      pending[idx] = make_msg(1 + waited % 3, 2, "fast");
    }
    EXPECT_TRUE(delivered)
        << "seed " << seed << ": lagged message starved for " << kBound
        << " picks";
  }
}

TEST(SchedulerFairnessTest, LaggardDeliversImmediatelyWhenOnlyLaggedPending) {
  LaggardScheduler sched(3, {0, 2});
  std::vector<Message> pending;
  pending.push_back(make_msg(0, 2, "lag"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sched.pick(pending), 0u);
  }
}

TEST(SchedulerFairnessTest, RandomSchedulerCoversTheWholePool) {
  RandomScheduler sched(42);
  std::vector<Message> pending;
  for (ProcessId i = 0; i < 8; ++i) pending.push_back(make_msg(i, 0, "m"));
  std::vector<bool> hit(pending.size(), false);
  for (int i = 0; i < 2000; ++i) {
    const std::size_t idx = sched.pick(pending);
    ASSERT_LT(idx, pending.size());
    hit[idx] = true;
  }
  for (std::size_t i = 0; i < hit.size(); ++i) {
    EXPECT_TRUE(hit[i]) << "index " << i << " never picked";
  }
}

}  // namespace
}  // namespace rbvc::sim
