// Shrinker correctness: a synthetic predicate shrinks to the minimal core,
// and a planted protocol bug (quorum below n-f via the test-only
// Params::quorum_override hook) is found by the property driver, minimized
// to a schedule no longer than the original, and the written repro file
// still fails when replayed.
#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/property.h"

namespace rbvc {
namespace {

TEST(ShrinkTest, SyntheticPredicateShrinksToTheFailingCore) {
  sim::ScheduleLog log;
  for (std::size_t i = 0; i < 60; ++i) log.add_pick(i % 7);
  // "Fails" iff some pick has value 5: the minimal failing schedule is a
  // single such entry.
  const auto has_five = [](const sim::ScheduleLog& l) {
    for (const sim::ScheduleEntry& e : l.entries()) {
      if (e.kind == sim::ScheduleEntryKind::kPick && e.value == 5) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(has_five(log));
  harness::ShrinkStats stats;
  const auto small = harness::shrink_schedule(log, has_five, 5000, &stats);
  EXPECT_TRUE(has_five(small));
  EXPECT_EQ(small.size(), 1u);
  EXPECT_EQ(stats.original_size, 60u);
  EXPECT_EQ(stats.final_size, 1u);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(ShrinkTest, EmptyScheduleReturnsWithoutRunningThePredicate) {
  sim::ScheduleLog empty;
  std::size_t calls = 0;
  harness::ShrinkStats stats;
  const auto out = harness::shrink_schedule(
      empty,
      [&calls](const sim::ScheduleLog&) {
        ++calls;
        return true;
      },
      5000, &stats);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(calls, 0u);  // nothing to edit, so nothing to verify
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_EQ(stats.original_size, 0u);
  EXPECT_EQ(stats.final_size, 0u);
}

TEST(ShrinkTest, FallbackEquivalentTailIsTrimmedForFree) {
  // A log of nothing but value-0 picks and choices replays exactly like an
  // empty log (FIFO / first-option fallbacks), so the shrinker must trim
  // it without invoking the predicate at all.
  sim::ScheduleLog log;
  for (std::size_t i = 0; i < 6; ++i) {
    log.add_pick(0);
    log.add_choice(0);
  }
  std::size_t calls = 0;
  const auto out = harness::shrink_schedule(
      log,
      [&calls](const sim::ScheduleLog&) {
        ++calls;
        return true;
      },
      5000, nullptr);
  EXPECT_EQ(out.size(), 0u);
  EXPECT_EQ(calls, 0u);
}

TEST(ShrinkTest, AlreadyMinimalInputComesBackUnchanged) {
  // One nonzero pick is the smallest schedule this predicate accepts: the
  // shrinker must hand it back intact, spending only the unavoidable
  // probes (each of which the predicate rejects).
  sim::ScheduleLog minimal;
  minimal.add_pick(5);
  const auto has_five = [](const sim::ScheduleLog& l) {
    for (const sim::ScheduleEntry& e : l.entries()) {
      if (e.kind == sim::ScheduleEntryKind::kPick && e.value == 5) {
        return true;
      }
    }
    return false;
  };
  harness::ShrinkStats stats;
  const auto out = harness::shrink_schedule(minimal, has_five, 5000, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.entries()[0].value, 5u);
  EXPECT_EQ(stats.accepted, 0u);  // no candidate ever improved on it
  EXPECT_EQ(stats.final_size, 1u);
  // One deletion probe and one canonicalization probe per pass; the pass
  // loop ends after the first unchanged pass.
  EXPECT_LE(stats.attempts, 4u);
}

TEST(ShrinkTest, ChoiceEntriesShrinkLikePicks) {
  // kChoice entries participate in deletion, canonicalization (toward the
  // first option), and free trailing trims, exactly like picks.
  sim::ScheduleLog log;
  for (std::size_t i = 0; i < 20; ++i) log.add_choice(1 + i % 3);
  const auto has_two = [](const sim::ScheduleLog& l) {
    for (const sim::ScheduleEntry& e : l.entries()) {
      if (e.kind == sim::ScheduleEntryKind::kChoice && e.value == 2) {
        return true;
      }
    }
    return false;
  };
  ASSERT_TRUE(has_two(log));
  harness::ShrinkStats stats;
  const auto small = harness::shrink_schedule(log, has_two, 5000, &stats);
  EXPECT_TRUE(has_two(small));
  EXPECT_EQ(small.size(), 1u);
  EXPECT_EQ(small.entries()[0].kind, sim::ScheduleEntryKind::kChoice);
}

TEST(ShrinkTest, ShrinkRespectsTheAttemptBudget) {
  sim::ScheduleLog log;
  for (std::size_t i = 0; i < 40; ++i) log.add_pick(i);
  const auto always_fails = [](const sim::ScheduleLog&) { return true; };
  harness::ShrinkStats stats;
  const auto small = harness::shrink_schedule(log, always_fails, 10, &stats);
  EXPECT_LE(stats.attempts, 10u);
  EXPECT_LE(small.size(), log.size());
}

harness::AsyncProperty planted_quorum_bug() {
  harness::AsyncProperty prop;
  prop.name = "planted_quorum_bug";
  prop.generate = [](Rng& rng) {
    workload::AsyncExperiment e;
    e.prm.n = 4;
    e.prm.f = 1;
    e.prm.rounds = 2;
    e.prm.use_witness = false;
    e.prm.quorum_override = 2;  // < n - f = 3: the planted bug
    e.d = 2;
    e.honest_inputs = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    e.scheduler = workload::SchedulerKind::kRandom;
    e.seed = rng.next_u64();
    return e;
  };
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  prop.episodes = 12;
  prop.shrink_budget = 200;
  prop.repro_dir = ::testing::TempDir();
  return prop;
}

TEST(ShrinkTest, PlantedQuorumBugShrinksAndReproStillFails) {
  ::unsetenv("RBVC_REPLAY");  // make sure we fuzz, not replay
  const auto prop = planted_quorum_bug();
  const auto res = harness::check_property<harness::AsyncRunner>(prop);
  ASSERT_FALSE(res.passed) << harness::describe(res);
  EXPECT_FALSE(res.failure.empty());
  // The minimized schedule is never longer than the recorded one.
  EXPECT_LE(res.shrunk_len, res.original_len);
  ASSERT_FALSE(res.repro_path.empty());

  // The repro file is self-contained: loading and replaying it reproduces
  // an invariant violation without any state from this process.
  const auto rep = harness::load_async_repro(res.repro_path);
  EXPECT_EQ(rep.property, prop.name);
  EXPECT_EQ(rep.schedule.size(), res.shrunk_len);
  EXPECT_EQ(rep.experiment.prm.quorum_override, 2u);
  const auto replayed = harness::replay_async_repro(rep);
  EXPECT_FALSE(prop.oracle(rep.experiment, replayed).empty())
      << "shrunk schedule no longer fails";
  // Replaying twice is byte-for-byte stable.
  const auto replayed_again = harness::replay_async_repro(rep);
  EXPECT_EQ(replayed.decisions, replayed_again.decisions);
  EXPECT_TRUE(replayed.trace == replayed_again.trace);
}

TEST(ShrinkTest, HealthyQuorumDoesNotTriggerThePlantedOracle) {
  ::unsetenv("RBVC_REPLAY");
  auto prop = planted_quorum_bug();
  prop.name = "healthy_quorum_control";
  auto broken = prop.generate;
  prop.generate = [broken](Rng& rng) {
    auto e = broken(rng);
    e.prm.quorum_override = 0;  // back to the correct n - f quorum
    e.prm.use_witness = true;
    return e;
  };
  prop.episodes = 4;
  const auto res = harness::check_property<harness::AsyncRunner>(prop);
  EXPECT_TRUE(res.passed) << harness::describe(res);
}

}  // namespace
}  // namespace rbvc
