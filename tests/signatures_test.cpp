#include "sim/signatures.h"

#include <gtest/gtest.h>

namespace rbvc::sim {
namespace {

TEST(SignaturesTest, SignVerifyRoundTrip) {
  SignatureAuthority auth(42);
  const Signer s0 = auth.signer_for(0);
  Digest d;
  d.absorb(Vec{1.0, 2.0});
  const Signature sig = s0.sign(d.value());
  EXPECT_TRUE(auth.verify(0, d.value(), sig));
}

TEST(SignaturesTest, WrongSignerRejected) {
  SignatureAuthority auth(42);
  const Signature sig = auth.signer_for(0).sign(123);
  EXPECT_FALSE(auth.verify(1, 123, sig));
}

TEST(SignaturesTest, WrongDigestRejected) {
  SignatureAuthority auth(42);
  const Signature sig = auth.signer_for(0).sign(123);
  EXPECT_FALSE(auth.verify(0, 124, sig));
}

TEST(SignaturesTest, ForgedSignatureRejected) {
  SignatureAuthority auth(42);
  // Guessing or perturbing signatures must not verify.
  const Signature sig = auth.signer_for(0).sign(123);
  EXPECT_FALSE(auth.verify(0, 123, sig ^ 1));
  EXPECT_FALSE(auth.verify(0, 123, 0));
}

TEST(SignaturesTest, AuthoritiesAreIndependent) {
  SignatureAuthority a(1), b(2);
  const Signature sig = a.signer_for(0).sign(99);
  EXPECT_FALSE(b.verify(0, 99, sig));
}

TEST(SignaturesTest, DigestOrderSensitive) {
  Digest a, b;
  a.absorb(1);
  a.absorb(2);
  b.absorb(2);
  b.absorb(1);
  EXPECT_NE(a.value(), b.value());
}

TEST(SignaturesTest, DigestCoversVectorContent) {
  Digest a, b, c;
  a.absorb(Vec{1.0, 2.0});
  b.absorb(Vec{1.0, 2.0});
  c.absorb(Vec{1.0, 2.000001});
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
  // Length is part of the digest: (1,2) vs (1,2,0) differ.
  Digest d1, d2;
  d1.absorb(Vec{1.0, 2.0});
  d2.absorb(Vec{1.0, 2.0, 0.0});
  EXPECT_NE(d1.value(), d2.value());
}

TEST(SignaturesTest, DigestCoversIntVectors) {
  Digest a, b;
  a.absorb(std::vector<int>{1, -2});
  b.absorb(std::vector<int>{1, -3});
  EXPECT_NE(a.value(), b.value());
}

}  // namespace
}  // namespace rbvc::sim
