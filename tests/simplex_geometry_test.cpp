// Tests for the paper's Lemmas 11-15 (Sec. 9.1), which the exact delta*
// computation is built on.
#include "geometry/simplex_geometry.h"

#include <gtest/gtest.h>

#include <cmath>

#include "geometry/distance.h"
#include "hull/relaxed_hull.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

std::vector<Vec> equilateral_triangle() {
  return {{-1.0, 0.0}, {1.0, 0.0}, {0.0, std::sqrt(3.0)}};
}

TEST(SimplexGeomTest, RejectsNonSimplex) {
  EXPECT_FALSE(SimplexGeometry::build({{0, 0}, {1, 0}}).has_value());
  EXPECT_FALSE(
      SimplexGeometry::build({{0, 0}, {1, 1}, {2, 2}}).has_value());
  EXPECT_FALSE(SimplexGeometry::build({}).has_value());
}

TEST(SimplexGeomTest, EquilateralInradius) {
  // Side 2 equilateral: r = side / (2*sqrt(3)) = 1/sqrt(3).
  const auto g = SimplexGeometry::build(equilateral_triangle());
  ASSERT_TRUE(g.has_value());
  EXPECT_NEAR(g->inradius(), 1.0 / std::sqrt(3.0), 1e-12);
  EXPECT_TRUE(approx_equal(g->incenter(), {0.0, 1.0 / std::sqrt(3.0)}, 1e-12));
}

TEST(SimplexGeomTest, RightTriangleInradius) {
  // Legs 3,4, hypotenuse 5: r = (3 + 4 - 5) / 2 = 1, incenter (1,1).
  const auto g = SimplexGeometry::build({{0.0, 0.0}, {3.0, 0.0}, {0.0, 4.0}});
  ASSERT_TRUE(g.has_value());
  EXPECT_NEAR(g->inradius(), 1.0, 1e-12);
  EXPECT_TRUE(approx_equal(g->incenter(), {1.0, 1.0}, 1e-10));
}

TEST(SimplexGeomTest, RegularTetrahedronInradius) {
  // Regular tetrahedron with side s: r = s / (2 sqrt(6)).
  const double s = std::sqrt(2.0);
  const std::vector<Vec> tet = {
      {1, 1, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};  // side sqrt(2)
  const auto g = SimplexGeometry::build(tet);
  ASSERT_TRUE(g.has_value());
  EXPECT_NEAR(g->inradius(), s / (2.0 * std::sqrt(6.0)), 1e-12);
}

TEST(SimplexGeomTest, Lemma11DualVectorProperty) {
  // <a_i - a_j, b_k> = delta_ik - delta_jk.
  Rng rng(71);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t d = 3 + rep % 3;
    const auto verts = workload::random_simplex(rng, d);
    const auto g = SimplexGeometry::build(verts);
    ASSERT_TRUE(g.has_value());
    const auto& b = g->dual_vectors();
    for (std::size_t i = 0; i <= d; ++i) {
      for (std::size_t j = 0; j <= d; ++j) {
        for (std::size_t k = 0; k <= d; ++k) {
          const double expect =
              (i == k ? 1.0 : 0.0) - (j == k ? 1.0 : 0.0);
          EXPECT_NEAR(dot(sub(verts[i], verts[j]), b[k]), expect, 1e-8);
        }
      }
    }
  }
}

TEST(SimplexGeomTest, IncenterIsEquidistantFromFacets) {
  Rng rng(73);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t d = 2 + rep % 4;
    const auto verts = workload::random_simplex(rng, d);
    const auto g = SimplexGeometry::build(verts);
    ASSERT_TRUE(g.has_value());
    for (std::size_t k = 0; k <= d; ++k) {
      EXPECT_NEAR(g->distance_to_facet_plane(g->incenter(), k), g->inradius(),
                  1e-8);
    }
  }
}

TEST(SimplexGeomTest, InradiusMatchesHullDistances) {
  // Lemma 13 geometry: the incenter's distance to each facet's convex hull
  // equals the inradius (the facets are the drop-1 subsets).
  Rng rng(79);
  const auto verts = workload::random_simplex(rng, 4);
  const auto g = SimplexGeometry::build(verts);
  ASSERT_TRUE(g.has_value());
  double max_dist = 0.0;
  for (const auto& facet : drop_f_subsets(verts, 1)) {
    max_dist = std::max(max_dist,
                        project_to_hull(g->incenter(), facet).distance);
  }
  EXPECT_NEAR(max_dist, g->inradius(), 1e-7);
}

TEST(SimplexGeomTest, Lemma14FacetInradiusExceedsInradius) {
  Rng rng(83);
  for (int rep = 0; rep < 15; ++rep) {
    const std::size_t d = 2 + rep % 5;
    const auto verts = workload::random_simplex(rng, d);
    const auto g = SimplexGeometry::build(verts);
    ASSERT_TRUE(g.has_value());
    for (std::size_t k = 0; k <= d; ++k) {
      EXPECT_LT(g->inradius(), g->facet_inradius(k))
          << "d=" << d << " k=" << k;
    }
  }
}

TEST(SimplexGeomTest, Lemma15InradiusBelowMaxEdgeOverD) {
  Rng rng(89);
  for (int rep = 0; rep < 15; ++rep) {
    const std::size_t d = 2 + rep % 5;
    const auto verts = workload::random_simplex(rng, d);
    const auto g = SimplexGeometry::build(verts);
    ASSERT_TRUE(g.has_value());
    const auto ee = edge_extremes(verts);
    EXPECT_LT(g->inradius(), ee.max_edge / static_cast<double>(d));
  }
}

TEST(SimplexGeomTest, InradiusBelowHalfMinEdge) {
  // The d=2 base case of Theorem 9's induction, checked in all dims.
  Rng rng(97);
  for (int rep = 0; rep < 15; ++rep) {
    const std::size_t d = 2 + rep % 5;
    const auto verts = workload::random_simplex(rng, d);
    const auto g = SimplexGeometry::build(verts);
    ASSERT_TRUE(g.has_value());
    EXPECT_LT(g->inradius(), edge_extremes(verts).min_edge / 2.0);
  }
}

TEST(EdgeExtremesTest, Basics) {
  const auto e = edge_extremes({{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}});
  EXPECT_DOUBLE_EQ(e.min_edge, 1.0);
  EXPECT_DOUBLE_EQ(e.max_edge, 5.0);
  const auto single = edge_extremes({{1.0}});
  EXPECT_DOUBLE_EQ(single.min_edge, 0.0);
  EXPECT_DOUBLE_EQ(single.max_edge, 0.0);
  // Duplicates give a zero min edge (multiset semantics).
  const auto dup = edge_extremes({{1.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}});
  EXPECT_DOUBLE_EQ(dup.min_edge, 0.0);
}

TEST(EdgeExtremesTest, RespectsNorm) {
  const auto e1 = edge_extremes({{0.0, 0.0}, {1.0, 1.0}}, 1.0);
  const auto einf = edge_extremes({{0.0, 0.0}, {1.0, 1.0}}, kInfNorm);
  EXPECT_DOUBLE_EQ(e1.max_edge, 2.0);
  EXPECT_DOUBLE_EQ(einf.max_edge, 1.0);
}

}  // namespace
}  // namespace rbvc
