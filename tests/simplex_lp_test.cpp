#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace rbvc::lp {
namespace {

TEST(SimplexTest, SolvesBasicProblem) {
  // min -x - y  s.t.  x + y + s = 4, x + 3y + t = 6  (x,y,s,t >= 0)
  Matrix a(2, 4);
  a(0, 0) = 1; a(0, 1) = 1; a(0, 2) = 1;
  a(1, 0) = 1; a(1, 1) = 3; a(1, 3) = 1;
  const auto sol = solve_standard(a, {4.0, 6.0}, {-1.0, -1.0, 0.0, 0.0});
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);  // optimum at x=4 or x=3,y=1
}

TEST(SimplexTest, DetectsInfeasible) {
  // x = 1 and x = 2 simultaneously.
  Matrix a(2, 1);
  a(0, 0) = 1;
  a(1, 0) = 1;
  const auto sol = solve_standard(a, {1.0, 2.0}, {0.0});
  EXPECT_EQ(sol.status, Status::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // min -x s.t. x - y = 0: x can grow forever with y.
  Matrix a(1, 2);
  a(0, 0) = 1;
  a(0, 1) = -1;
  const auto sol = solve_standard(a, {0.0}, {-1.0, 0.0});
  EXPECT_EQ(sol.status, Status::kUnbounded);
}

TEST(SimplexTest, HandlesNegativeRhs) {
  // -x = -3  =>  x = 3.
  Matrix a(1, 1);
  a(0, 0) = -1;
  const auto sol = solve_standard(a, {-3.0}, {1.0});
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(SimplexTest, RedundantRowsAreDropped) {
  // Same constraint twice: phase 1 must not declare it infeasible.
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 1;
  const auto sol = solve_standard(a, {2.0, 2.0}, {1.0, 0.0});
  ASSERT_EQ(sol.status, Status::kOptimal);
  EXPECT_NEAR(sol.objective, 0.0, 1e-9);  // put everything on x2
}

TEST(SimplexTest, NoConstraints) {
  const auto ok = solve_standard(Matrix(0, 2), {}, {1.0, 1.0});
  EXPECT_EQ(ok.status, Status::kOptimal);
  const auto unb = solve_standard(Matrix(0, 2), {}, {-1.0, 1.0});
  EXPECT_EQ(unb.status, Status::kUnbounded);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic cycling-prone structure (Beale): must terminate via Bland.
  Matrix a(3, 7);
  const double rows[3][7] = {
      {0.25, -8.0, -1.0, 9.0, 1.0, 0.0, 0.0},
      {0.5, -12.0, -0.5, 3.0, 0.0, 1.0, 0.0},
      {0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0},
  };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 7; ++c) a(r, c) = rows[r][c];
  }
  const Vec b = {0.0, 0.0, 1.0};
  const Vec c = {-0.75, 150.0, -0.02, 6.0, 0.0, 0.0, 0.0};
  const auto sol = solve_standard(a, b, c);
  ASSERT_EQ(sol.status, Status::kOptimal);
  // Optimum at x = (1, 0, 1, 0): z = -0.75 - 0.02 = -0.77.
  EXPECT_NEAR(sol.objective, -0.77, 1e-9);
}

TEST(SimplexTest, RandomFeasibilityAgainstConstruction) {
  // Construct random feasible systems (x0 known feasible); phase 1 must
  // succeed, and the optimum must satisfy A x = b, x >= 0.
  Rng rng(21);
  for (int rep = 0; rep < 25; ++rep) {
    const std::size_t m = 3, n = 6;
    Matrix a(m, n);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t c = 0; c < n; ++c) a(r, c) = rng.normal();
    }
    Vec x0(n);
    for (double& v : x0) v = rng.uniform(0.0, 2.0);
    const Vec b = a * x0;
    Vec c(n);
    for (double& v : c) v = rng.normal();
    const auto sol = solve_standard(a, b, c);
    ASSERT_NE(sol.status, Status::kInfeasible) << "rep " << rep;
    if (sol.status != Status::kOptimal) continue;  // unbounded draws OK
    const Vec res = sub(a * sol.x, b);
    EXPECT_LT(norm2(res), 1e-6);
    for (double v : sol.x) EXPECT_GE(v, -1e-9);
    // Optimal objective can be no worse than the known feasible point's.
    EXPECT_LE(sol.objective, dot(c, x0) + 1e-7);
  }
}

TEST(SimplexTest, StatusToString) {
  EXPECT_STREQ(to_string(Status::kOptimal), "optimal");
  EXPECT_STREQ(to_string(Status::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(Status::kUnbounded), "unbounded");
  EXPECT_STREQ(to_string(Status::kIterLimit), "iteration-limit");
}

}  // namespace
}  // namespace rbvc::lp
