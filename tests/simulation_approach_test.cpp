// The paper extends each f = 1 impossibility to f > 1 "using the well-known
// simulation approach [12]": replace every logical process of the f = 1
// construction by f physical copies, so the n = (d+1) instance becomes an
// n = (d+1)f instance tolerating f faults. These tests verify the resulting
// constructions computationally -- the certified emptiness survives the
// blow-up exactly as the reduction predicts, and one extra process restores
// feasibility, so the (d+1)f + 1 bound is tight for every f.
#include <gtest/gtest.h>

#include "hull/gamma.h"
#include "hull/psi.h"
#include "workload/adversarial_inputs.h"

namespace rbvc {
namespace {

std::vector<Vec> duplicate_each(const std::vector<Vec>& base, std::size_t f) {
  std::vector<Vec> out;
  out.reserve(base.size() * f);
  for (const Vec& v : base) {
    for (std::size_t i = 0; i < f; ++i) out.push_back(v);
  }
  return out;
}

TEST(SimulationApproach, Thm3ExtendsToF2) {
  // Psi_2 of the duplicated Theorem 3 inputs is empty at n = (d+1)f, f = 2.
  for (std::size_t d : {3u, 4u}) {
    const auto y = duplicate_each(workload::thm3_inputs(d, 1.0, 0.5), 2);
    ASSERT_EQ(y.size(), (d + 1) * 2);
    EXPECT_FALSE(psi_k_point(y, 2, 2).has_value()) << "d=" << d;
    // Tightness: one extra process makes it feasible again.
    auto y_plus = y;
    y_plus.push_back(Vec(d, 0.0));
    EXPECT_TRUE(psi_k_point(y_plus, 2, 2).has_value()) << "d=" << d;
  }
}

TEST(SimulationApproach, Thm3ExtendsToF3) {
  const std::size_t d = 3;
  const auto y = duplicate_each(workload::thm3_inputs(d, 1.0, 0.5), 3);
  ASSERT_EQ(y.size(), (d + 1) * 3);
  EXPECT_FALSE(psi_k_point(y, 3, 2).has_value());
  auto y_plus = y;
  y_plus.push_back(Vec(d, 0.0));
  EXPECT_TRUE(psi_k_point(y_plus, 3, 2).has_value());
}

TEST(SimulationApproach, Thm5ExtendsToF2) {
  // Gamma_(delta,inf) of the duplicated Theorem 5 inputs is empty above the
  // same x > 2 d delta threshold -- the threshold does not move under the
  // simulation blow-up.
  const double delta = 0.25;
  for (std::size_t d : {3u, 4u}) {
    const double x_bad = 2.0 * double(d) * delta * 1.05;
    const auto bad =
        duplicate_each(workload::thm5_inputs(d, x_bad), 2);
    EXPECT_FALSE(
        gamma_delta_point_linear(bad, 2, delta, kInfNorm).has_value())
        << "d=" << d;
    const double x_ok = 2.0 * double(d) * delta * 0.9;
    const auto ok = duplicate_each(workload::thm5_inputs(d, x_ok), 2);
    EXPECT_TRUE(
        gamma_delta_point_linear(ok, 2, delta, kInfNorm).has_value())
        << "d=" << d;
  }
}

TEST(SimulationApproach, AppendixBExtendsToF2) {
  // The async forced-gap construction also survives duplication: with
  // n = (d+2)f processes the output sets of the first two logical process
  // groups stay >= 2 epsilon apart.
  const std::size_t d = 3;
  const double eps = 0.2;
  const auto base = workload::appendix_b_inputs(d, 1.0, eps);
  // Duplicate, then build the proof subsets on the duplicated multiset:
  // S^j drops both copies of logical process j (they are the two physical
  // processes simulated by one logical faulty process).
  const auto s = duplicate_each(base, 2);
  auto drop_logical = [&](std::size_t j) {
    std::vector<Vec> out;
    for (std::size_t l = 0; l + 1 < base.size(); ++l) {  // first d+1 logical
      if (l == j) continue;
      out.push_back(s[2 * l]);
      out.push_back(s[2 * l + 1]);
    }
    return out;
  };
  auto psi_spec = [&](std::size_t i) {
    RelaxedIntersectionSpec spec;
    for (std::size_t j = 0; j + 1 < base.size(); ++j) {
      if (j != i) spec.parts.push_back(drop_logical(j));
    }
    spec.k = 2;
    return spec;
  };
  const auto gap = relaxed_intersection_linf_gap(psi_spec(0), psi_spec(1));
  ASSERT_TRUE(gap.has_value());
  EXPECT_GE(*gap, 2.0 * eps - 1e-7);
}

}  // namespace
}  // namespace rbvc
