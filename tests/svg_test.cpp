#include "workload/svg.h"

#include <gtest/gtest.h>

#include <fstream>

#include "consensus/hull_consensus.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc::workload {
namespace {

TEST(SvgTest, RendersWellFormedMarkup) {
  Rng rng(1301);
  SvgScene scene(400);
  const auto pts = gaussian_cloud(rng, 6, 2);
  scene.add_points(pts, "#1f77b4", "inputs");
  scene.add_hull(pts, "#1f77b4", "input hull");
  scene.add_marker({0.0, 0.0}, "#d62728", "decision");
  const std::string svg = scene.render();
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  // One circle per point + marker + 2 legend dots.
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_GE(circles, pts.size() + 1);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
}

TEST(SvgTest, SafeAreaSceneIncludesGammaPolygon) {
  Rng rng(1303);
  const auto pts = gaussian_cloud(rng, 7, 2);
  const auto poly = consensus::gamma_polygon(pts, 1);
  ASSERT_TRUE(poly.has_value());
  SvgScene scene;
  scene.add_points(pts, "black", "inputs");
  scene.add_polygon(*poly, "green", "Gamma(S), f=1");
  const std::string svg = scene.render();
  EXPECT_NE(svg.find("Gamma(S), f=1"), std::string::npos);
}

TEST(SvgTest, WriteFileRoundTrip) {
  SvgScene scene;
  scene.add_marker({1.0, 2.0}, "red", "x");
  const std::string path = "/tmp/rbvc_svg_test.svg";
  ASSERT_TRUE(scene.write_file(path));
  std::ifstream f(path);
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, scene.render());
}

TEST(SvgTest, RejectsNon2D) {
  SvgScene scene;
  EXPECT_THROW(scene.add_marker({1.0, 2.0, 3.0}, "red", "x"),
               invalid_argument);
}

TEST(SvgTest, DegenerateSceneStillRenders) {
  SvgScene scene;
  scene.add_marker({5.0, 5.0}, "blue", "only point");
  const std::string svg = scene.render();  // zero span must not divide by 0
  EXPECT_NE(svg.find("circle"), std::string::npos);
  EXPECT_EQ(svg.find("nan"), std::string::npos);
  EXPECT_EQ(svg.find("inf"), std::string::npos);
}

}  // namespace
}  // namespace rbvc::workload
