#include "sim/sync_engine.h"

#include <gtest/gtest.h>

namespace rbvc::sim {
namespace {

// Relays a counter: round r, everyone broadcasts round number; decided after
// `target` rounds; records what it saw.
class PingProcess final : public SyncProcess {
 public:
  PingProcess(std::size_t n, std::size_t target) : n_(n), target_(target) {}

  void round(std::size_t round_no, const std::vector<Message>& inbox,
             Outbox& out) override {
    received_.push_back(inbox.size());
    if (round_no >= target_) {
      done_ = true;
      return;
    }
    Message m;
    m.kind = "ping";
    m.meta = {static_cast<int>(round_no)};
    out.broadcast(n_, m);
  }

  bool decided() const override { return done_; }
  const std::vector<std::size_t>& received() const { return received_; }

 private:
  std::size_t n_, target_;
  bool done_ = false;
  std::vector<std::size_t> received_;
};

TEST(SyncEngineTest, DeliversNextRound) {
  SyncEngine e;
  for (int i = 0; i < 3; ++i) e.add(std::make_unique<PingProcess>(3, 2));
  const auto stats = e.run(10);
  EXPECT_TRUE(stats.all_decided);
  EXPECT_EQ(stats.rounds, 3u);
  for (ProcessId id = 0; id < 3; ++id) {
    const auto& p = dynamic_cast<PingProcess&>(e.process(id));
    ASSERT_EQ(p.received().size(), 3u);
    EXPECT_EQ(p.received()[0], 0u);  // round 0: nothing yet
    EXPECT_EQ(p.received()[1], 3u);  // everyone broadcast in round 0
    EXPECT_EQ(p.received()[2], 3u);
  }
}

TEST(SyncEngineTest, MessageCount) {
  SyncEngine e;
  for (int i = 0; i < 4; ++i) e.add(std::make_unique<PingProcess>(4, 1));
  const auto stats = e.run(10);
  // Rounds 0 and 1 each see 4 processes broadcast to 4... round 1 is the
  // decision round (no sends): only round 0 sends 16 messages.
  EXPECT_EQ(stats.messages, 16u);
}

TEST(SyncEngineTest, RoundLimit) {
  class NeverDone final : public SyncProcess {
   public:
    void round(std::size_t, const std::vector<Message>&, Outbox&) override {}
    bool decided() const override { return false; }
  };
  SyncEngine e;
  e.add(std::make_unique<NeverDone>());
  const auto stats = e.run(5);
  EXPECT_FALSE(stats.all_decided);
  EXPECT_EQ(stats.rounds, 5u);
}

TEST(SyncEngineTest, FromFieldIsStamped) {
  class Spoofer final : public SyncProcess {
   public:
    void round(std::size_t round_no, const std::vector<Message>& inbox,
               Outbox& out) override {
      if (round_no == 0) {
        Message m;
        m.kind = "x";
        m.from = 99;  // attempt to spoof
        out.send(0, std::move(m));
      }
      for (const Message& m : inbox) froms_.push_back(m.from);
      done_ = round_no >= 1;
    }
    bool decided() const override { return done_; }
    std::vector<ProcessId> froms_;
    bool done_ = false;
  };
  SyncEngine e;
  e.add(std::make_unique<Spoofer>());
  e.add(std::make_unique<Spoofer>());
  e.run(3);
  const auto& p0 = dynamic_cast<Spoofer&>(e.process(0));
  ASSERT_EQ(p0.froms_.size(), 2u);  // one from each spoofer
  // Senders are the true ids 0 and 1, never 99.
  EXPECT_EQ(p0.froms_[0], 0u);
  EXPECT_EQ(p0.froms_[1], 1u);
}

TEST(SyncEngineTest, InvalidRecipientThrows) {
  class BadSender final : public SyncProcess {
   public:
    void round(std::size_t, const std::vector<Message>&,
               Outbox& out) override {
      out.send(7, Message{});
    }
    bool decided() const override { return false; }
  };
  SyncEngine e;
  e.add(std::make_unique<BadSender>());
  EXPECT_THROW(e.run(2), invalid_argument);
}

TEST(SyncEngineTest, TraceRecordsSends) {
  SyncEngine e;
  e.trace().set_enabled(true);
  for (int i = 0; i < 2; ++i) e.add(std::make_unique<PingProcess>(2, 1));
  e.run(5);
  EXPECT_EQ(e.trace().count(EventType::kSend), 4u);
  EXPECT_FALSE(e.trace().dump().empty());
}

}  // namespace
}  // namespace rbvc::sim
