#include <gtest/gtest.h>

#include "sim/message.h"
#include "sim/trace.h"

namespace rbvc::sim {
namespace {

TEST(MessageTest, SameContentIgnoresRouting) {
  Message a;
  a.kind = "x";
  a.meta = {1, 2};
  a.payload = {0.5};
  Message b = a;
  b.from = 3;
  b.to = 1;
  EXPECT_TRUE(a.same_content(b));
  b.meta.push_back(9);
  EXPECT_FALSE(a.same_content(b));
}

TEST(MessageTest, ContentOrderingIsStrictWeak) {
  Message a, b, c;
  a.kind = "a";
  b.kind = "b";
  c.kind = "a";
  c.meta = {1};
  MessageContentLess less;
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  EXPECT_TRUE(less(a, c));  // same kind, meta breaks the tie
  EXPECT_FALSE(less(a, a));
}

TEST(MessageTest, DescribeIsReadable) {
  Message m;
  m.kind = "eig";
  m.from = 1;
  m.to = 2;
  m.meta = {0, 1};
  m.payload = {1.0, -2.0};
  const std::string s = describe(m);
  EXPECT_NE(s.find("eig"), std::string::npos);
  EXPECT_NE(s.find("1->2"), std::string::npos);
  EXPECT_NE(s.find("(1, -2)"), std::string::npos);
}

TEST(TraceTest, DisabledRecordsNothing) {
  Trace t;
  t.record(EventType::kSend, 0, 1, "x");
  EXPECT_TRUE(t.events().empty());
}

TEST(TraceTest, DumpIsStableAndMachineParseable) {
  Trace t;
  t.set_enabled(true);
  t.record(EventType::kSend, 0, 1, "eig 1->2 meta=[0,1] payload=(1, -2)");
  t.record(EventType::kDeliver, 3, 2, "detail with  spaces");
  t.record(EventType::kNote, 4, 0, "");
  const std::string dump = t.dump();
  // Fixed field order: "<type> <time> <process> <detail>".
  EXPECT_EQ(dump.substr(0, dump.find('\n')),
            "send 0 1 eig 1->2 meta=[0,1] payload=(1, -2)");
  const Trace back = Trace::parse(dump);
  ASSERT_EQ(back.events().size(), 3u);
  EXPECT_TRUE(back == t);
  EXPECT_EQ(back.dump(), dump);  // serialization is a fixpoint
}

TEST(TraceTest, RoundTripEscapesHostileDetails) {
  Trace t;
  t.set_enabled(true);
  t.record(EventType::kDecide, 7, 4, "line one\nline two\r\\backslash\\");
  t.record(EventType::kNote, 8, 5, "trailing backslash not possible: \\n");
  const Trace back = Trace::parse(t.dump());
  EXPECT_TRUE(back == t);
}

TEST(TraceTest, ParseRejectsMalformedLines) {
  EXPECT_THROW(Trace::parse("send\n"), invalid_argument);
  EXPECT_THROW(Trace::parse("send 1\n"), invalid_argument);
  EXPECT_THROW(Trace::parse("warp 1 2 x\n"), invalid_argument);
  EXPECT_THROW(Trace::parse("send x 2 y\n"), invalid_argument);
}

TEST(TraceTest, ParseRejectsTrailingGarbageAndEmptyLines) {
  // dump() terminates every line with '\n'; an unterminated tail is a
  // truncated or corrupted dump, not a valid final event.
  EXPECT_THROW(Trace::parse("send 0 1 ok\nsend 1 2 truncated"),
               invalid_argument);
  EXPECT_THROW(Trace::parse("send 0 1 x"), invalid_argument);
  EXPECT_THROW(Trace::parse("send 0 1 x\n\nsend 1 2 y\n"), invalid_argument);
  EXPECT_THROW(Trace::parse("\n"), invalid_argument);
  // The empty dump is the fixpoint of zero events, not garbage.
  EXPECT_TRUE(Trace::parse("").events().empty());
}

TEST(TraceTest, EmptyDetailRoundTrips) {
  Trace t;
  t.set_enabled(true);
  t.record(EventType::kNote, 5, 3, "");
  t.record(EventType::kSend, 6, 0, "after-empty");
  const std::string dump = t.dump();
  EXPECT_EQ(dump.substr(0, dump.find('\n')), "note 5 3 ");
  const Trace back = Trace::parse(dump);
  ASSERT_EQ(back.events().size(), 2u);
  EXPECT_EQ(back.events()[0].detail, "");
  EXPECT_TRUE(back == t);
  EXPECT_EQ(back.dump(), dump);
}

TEST(TraceTest, EmbeddedBackslashDetailRoundTrips) {
  Trace t;
  t.set_enabled(true);
  t.record(EventType::kDeliver, 1, 2, "path\\to\\thing");
  t.record(EventType::kNote, 2, 0, "\\");
  t.record(EventType::kNote, 3, 0, "\\n is two chars, \n is one");
  const Trace back = Trace::parse(t.dump());
  ASSERT_EQ(back.events().size(), 3u);
  EXPECT_EQ(back.events()[0].detail, "path\\to\\thing");
  EXPECT_EQ(back.events()[1].detail, "\\");
  EXPECT_EQ(back.events()[2].detail, "\\n is two chars, \n is one");
  EXPECT_TRUE(back == t);
  EXPECT_EQ(Trace::parse(back.dump()).dump(), t.dump());
}

TEST(TraceTest, DetailEscapingRoundTrips) {
  const std::string hostile = "a\\b\nc\rd \\n e\\\\f";
  EXPECT_EQ(unescape_detail(escape_detail(hostile)), hostile);
  EXPECT_EQ(escape_detail("plain text"), "plain text");
}

TEST(TraceTest, EnabledRecordsAndCounts) {
  Trace t;
  t.set_enabled(true);
  t.record(EventType::kSend, 0, 1, "a");
  t.record(EventType::kDeliver, 1, 2, "b");
  t.record(EventType::kSend, 1, 1, "c");
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.count(EventType::kSend), 2u);
  EXPECT_EQ(t.count(EventType::kDeliver), 1u);
  EXPECT_EQ(t.count(EventType::kDecide), 0u);
  const std::string dump = t.dump();
  EXPECT_NE(dump.find("send"), std::string::npos);
  EXPECT_NE(dump.find("deliver"), std::string::npos);
  t.clear();
  EXPECT_TRUE(t.events().empty());
}

}  // namespace
}  // namespace rbvc::sim
