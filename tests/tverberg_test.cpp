// Tests for the Tverberg machinery of paper Sec. 8.
#include "geometry/tverberg.h"

#include <gtest/gtest.h>

#include "hull/psi.h"
#include "linalg/qr.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(TverbergTest, GuaranteedPartitionAtBound) {
  // (d+1)f + 1 points always admit a partition into f+1 parts.
  Rng rng(101);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t d = 2 + rep % 2;
    const std::size_t f = 1;
    const auto pts =
        workload::gaussian_cloud(rng, (d + 1) * f + 1, d);
    const auto part = find_tverberg_partition(pts, f + 1);
    ASSERT_TRUE(part.has_value()) << "rep " << rep;
    // Certify: the named parts' hulls really intersect.
    std::vector<std::vector<Vec>> sets;
    for (const auto& block : *part) {
      std::vector<Vec> s;
      for (std::size_t i : block) s.push_back(pts[i]);
      sets.push_back(std::move(s));
    }
    EXPECT_TRUE(hulls_intersect(sets));
  }
}

TEST(TverbergTest, MomentCurveBelowBoundHasNoPartition) {
  // (d+1)f points in general position: no Tverberg partition (tightness).
  for (std::size_t d : {2u, 3u, 4u}) {
    const auto pts = moment_curve_points((d + 1) * 1, d);
    EXPECT_FALSE(find_tverberg_partition(pts, 2).has_value()) << "d=" << d;
  }
}

TEST(TverbergTest, MomentCurveF2) {
  // f = 2, d = 2: 6 points on the moment curve, 3 parts -> none.
  const auto pts = moment_curve_points(6, 2);
  EXPECT_FALSE(find_tverberg_partition(pts, 3).has_value());
  // 7 = (d+1)f + 1 points -> guaranteed.
  const auto pts7 = moment_curve_points(7, 2);
  EXPECT_TRUE(find_tverberg_partition(pts7, 3).has_value());
}

TEST(TverbergTest, RelaxedHullOracleWidensButStaysTight) {
  // Sec. 8: with H replaced by H_(delta,inf) for small delta, (d+1)f points
  // in general position still admit no partition (our Thm 5 implies the
  // bound stays tight); for a huge delta a partition must appear.
  const std::size_t d = 2;
  const auto pts = moment_curve_points(d + 1, d);
  auto delta_oracle = [&](double delta) {
    return [delta](const std::vector<std::vector<Vec>>& parts) {
      RelaxedIntersectionSpec spec;
      spec.parts = parts;
      spec.k = 0;
      spec.delta = delta;
      spec.p = kInfNorm;
      return relaxed_intersection_point(spec).has_value();
    };
  };
  EXPECT_FALSE(
      find_tverberg_partition(pts, 2, delta_oracle(1e-6)).has_value());
  EXPECT_TRUE(
      find_tverberg_partition(pts, 2, delta_oracle(1e3)).has_value());
}

TEST(TverbergTest, KRelaxedOracle) {
  // Same tightness story with H_k hulls (k = 2, d = 3).
  const auto pts = moment_curve_points(4, 3);
  auto k_oracle = [](const std::vector<std::vector<Vec>>& parts) {
    RelaxedIntersectionSpec spec;
    spec.parts = parts;
    spec.k = 2;
    return relaxed_intersection_point(spec).has_value();
  };
  EXPECT_FALSE(find_tverberg_partition(pts, 2, k_oracle).has_value());
}

TEST(TverbergTest, TooFewPointsReturnsNothing) {
  EXPECT_FALSE(find_tverberg_partition({{0.0, 0.0}}, 2).has_value());
}

TEST(Stirling2Test, KnownValues) {
  EXPECT_DOUBLE_EQ(stirling2(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(stirling2(4, 2), 7.0);
  EXPECT_DOUBLE_EQ(stirling2(5, 3), 25.0);
  EXPECT_DOUBLE_EQ(stirling2(7, 3), 301.0);
  EXPECT_DOUBLE_EQ(stirling2(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(stirling2(6, 1), 1.0);
}

TEST(MomentCurveTest, GeneralPosition) {
  // Any d+1 of the points are affinely independent.
  const auto pts = moment_curve_points(6, 3);
  for (std::size_t skip = 0; skip < pts.size(); ++skip) {
    std::vector<Vec> subset;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (i != skip && subset.size() < 4) subset.push_back(pts[i]);
    }
    EXPECT_TRUE(affinely_independent(subset, 1e-9)) << "skip " << skip;
  }
}

}  // namespace
}  // namespace rbvc
