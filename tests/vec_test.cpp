#include "linalg/vec.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rbvc {
namespace {

TEST(VecTest, AddSubScale) {
  const Vec x = {1.0, 2.0, 3.0};
  const Vec y = {4.0, -1.0, 0.5};
  EXPECT_EQ(add(x, y), (Vec{5.0, 1.0, 3.5}));
  EXPECT_EQ(sub(x, y), (Vec{-3.0, 3.0, 2.5}));
  EXPECT_EQ(scale(2.0, x), (Vec{2.0, 4.0, 6.0}));
}

TEST(VecTest, AxpyAccumulates) {
  Vec y = {1.0, 1.0};
  axpy(2.0, {3.0, -1.0}, y);
  EXPECT_EQ(y, (Vec{7.0, -1.0}));
}

TEST(VecTest, DotProduct) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}), 32.0);
  EXPECT_DOUBLE_EQ(dot({}, {}), 0.0);
}

TEST(VecTest, DimensionMismatchThrows) {
  EXPECT_THROW(add({1.0}, {1.0, 2.0}), invalid_argument);
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), invalid_argument);
  Vec y = {1.0};
  EXPECT_THROW(axpy(1.0, {1.0, 2.0}, y), invalid_argument);
}

TEST(VecTest, LpNorms) {
  const Vec x = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(lp_norm(x, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(lp_norm(x, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(lp_norm(x, kInfNorm), 4.0);
  EXPECT_NEAR(lp_norm(x, 3.0), std::cbrt(27.0 + 64.0), 1e-12);
}

TEST(VecTest, NormMonotoneInP) {
  // ||x||_p is non-increasing in p (norm ordering used by Thm 5 / Thm 13).
  const Vec x = {1.0, -2.0, 0.5, 3.0};
  double prev = lp_norm(x, 1.0);
  for (double p : {1.5, 2.0, 3.0, 4.0, 8.0}) {
    const double cur = lp_norm(x, p);
    EXPECT_LE(cur, prev + 1e-12) << "p=" << p;
    prev = cur;
  }
  EXPECT_LE(lp_norm(x, kInfNorm), prev + 1e-12);
}

TEST(VecTest, HolderEquivalenceBound) {
  // Theorem 13: ||x||_r <= d^(1/r - 1/p) ||x||_p for r <= p.
  const Vec x = {1.0, -2.0, 0.5, 3.0, -0.25};
  const double d = static_cast<double>(x.size());
  for (double r : {1.0, 2.0}) {
    for (double p : {2.0, 4.0}) {
      if (r > p) continue;
      EXPECT_LE(lp_norm(x, r),
                std::pow(d, 1.0 / r - 1.0 / p) * lp_norm(x, p) + 1e-12);
    }
  }
}

TEST(VecTest, InvalidPThrows) {
  EXPECT_THROW(lp_norm({1.0}, 0.5), invalid_argument);
}

TEST(VecTest, Distances) {
  EXPECT_DOUBLE_EQ(dist2({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(lp_dist({1.0, 1.0}, {2.0, 3.0}, 1.0), 3.0);
}

TEST(VecTest, MeanOfVectors) {
  const Vec m = mean({{0.0, 0.0}, {2.0, 4.0}, {4.0, 2.0}});
  EXPECT_TRUE(approx_equal(m, {2.0, 2.0}));
  EXPECT_THROW(mean({}), invalid_argument);
}

TEST(VecTest, ApproxEqual) {
  EXPECT_TRUE(approx_equal({1.0, 2.0}, {1.0 + 1e-12, 2.0}));
  EXPECT_FALSE(approx_equal({1.0, 2.0}, {1.1, 2.0}));
  EXPECT_FALSE(approx_equal({1.0}, {1.0, 2.0}));
}

TEST(VecTest, ZerosAndBasis) {
  EXPECT_EQ(zeros(3), (Vec{0.0, 0.0, 0.0}));
  EXPECT_EQ(basis(3, 1), (Vec{0.0, 1.0, 0.0}));
  EXPECT_THROW(basis(2, 2), invalid_argument);
}

TEST(VecTest, ToStringRendering) {
  EXPECT_EQ(to_string({1.0, -2.5}), "(1, -2.5)");
  EXPECT_EQ(to_string({}), "()");
}

}  // namespace
}  // namespace rbvc
