// Negative-path tests for the "Verified" part of Relaxed Verified
// Averaging: a Byzantine process that reliably-broadcasts a round-1 value
// NOT matching the deterministic rule applied to its declared view must be
// rejected by every correct process -- its only remaining freedoms are its
// round-0 input and its view selection.
#include <gtest/gtest.h>

#include "consensus/async_averaging.h"
#include "consensus/verifier.h"
#include "protocols/bracha_rbc.h"
#include "sim/async_engine.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

using consensus::AsyncAveragingProcess;

// Broadcasts an honest round-0 input, then forges its round-1 value: a
// far-away vector with a structurally valid view attached.
class ForgingAsyncProcess final : public sim::AsyncProcess {
 public:
  ForgingAsyncProcess(std::size_t n, std::size_t f, sim::ProcessId self,
                      Vec input, Vec forged)
      : n_(n), f_(f), rbc_(n, f, self), input_(std::move(input)),
        forged_(std::move(forged)) {}

  void init(sim::Outbox& out) override { rbc_.broadcast(0, input_, out); }

  void on_message(const sim::Message& m, sim::Outbox& out) override {
    if (!protocols::BrachaRbc::is_rbc(m)) return;
    for (const auto& d : rbc_.on_message(m, out)) {
      if (d.instance != 0) continue;
      seen_.insert(static_cast<int>(d.source));
      if (!sent_forgery_ && seen_.size() >= n_ - f_) {
        sent_forgery_ = true;
        // Structurally valid view (sorted, >= n-f entries) but a value that
        // no deterministic recomputation will reproduce.
        std::vector<int> view(seen_.begin(), seen_.end());
        rbc_.broadcast(1, forged_, out, view);
      }
    }
  }

  bool decided() const override { return true; }

 private:
  std::size_t n_, f_;
  protocols::BrachaRbc rbc_;
  Vec input_, forged_;
  std::set<int> seen_;
  bool sent_forgery_ = false;
};

TEST(VerifiedAveragingSecurity, ForgedRound1ValueIsRejected) {
  const std::size_t n = 4, f = 1, d = 3;
  Rng rng(1103);
  AsyncAveragingProcess::Params prm;
  prm.n = n;
  prm.f = f;
  prm.rounds = 6;

  sim::AsyncEngine engine(std::make_unique<sim::RandomScheduler>(9));
  std::vector<Vec> honest_inputs;
  std::vector<sim::ProcessId> correct;
  for (std::size_t id = 0; id < n; ++id) {
    if (id == 1) {
      engine.add(std::make_unique<ForgingAsyncProcess>(
          n, f, id, rng.normal_vec(d), Vec(d, 1e6)));
    } else {
      honest_inputs.push_back(rng.normal_vec(d));
      engine.add(std::make_unique<AsyncAveragingProcess>(
          prm, id, honest_inputs.back()));
      correct.push_back(id);
    }
  }
  const auto stats = engine.run(correct, 2'000'000);
  ASSERT_TRUE(stats.all_decided);

  std::vector<Vec> decisions;
  std::size_t total_rejections = 0;
  for (auto id : correct) {
    auto& p = dynamic_cast<AsyncAveragingProcess&>(engine.process(id));
    ASSERT_FALSE(p.failed());
    decisions.push_back(p.decision());
    total_rejections += p.rejected();
  }
  // The forged value must have been rejected somewhere (every correct
  // process that completed its verification saw the mismatch).
  EXPECT_GT(total_rejections, 0u);
  // And it must not have influenced the outcome: decisions stay within the
  // honest spread despite the 1e6-magnitude forgery.
  EXPECT_TRUE(check_epsilon_agreement(decisions, 0.2));
  EXPECT_LT(delta_p_validity_excess(
                decisions, honest_inputs,
                input_dependent_delta(honest_inputs, 1.0), 2.0),
            1e-4);
}

TEST(VerifiedAveragingSecurity, MalformedViewIsRejectedOutright) {
  // Unsorted / undersized views are structurally invalid: rejected without
  // waiting for prerequisites.
  const std::size_t n = 4, f = 1, d = 2;

  class MalformedViewProcess final : public sim::AsyncProcess {
   public:
    MalformedViewProcess(std::size_t n, std::size_t f, sim::ProcessId self)
        : rbc_(n, f, self) {}
    void init(sim::Outbox& out) override {
      rbc_.broadcast(0, {0.0, 0.0}, out);
      rbc_.broadcast(1, {5.0, 5.0}, out, {2, 0, 1});  // unsorted view
      rbc_.broadcast(2, {6.0, 6.0}, out, {0});        // too small
    }
    void on_message(const sim::Message& m, sim::Outbox& out) override {
      rbc_.on_message(m, out);
    }
    bool decided() const override { return true; }
    protocols::BrachaRbc rbc_;
  };

  AsyncAveragingProcess::Params prm;
  prm.n = n;
  prm.f = f;
  prm.rounds = 3;
  Rng rng(1109);
  sim::AsyncEngine engine(std::make_unique<sim::RandomScheduler>(10));
  std::vector<sim::ProcessId> correct;
  for (std::size_t id = 0; id < n; ++id) {
    if (id == 0) {
      engine.add(std::make_unique<MalformedViewProcess>(n, f, id));
    } else {
      engine.add(std::make_unique<AsyncAveragingProcess>(
          prm, id, rng.normal_vec(d)));
      correct.push_back(id);
    }
  }
  const auto stats = engine.run(correct, 1'000'000);
  ASSERT_TRUE(stats.all_decided);
  std::size_t rejections = 0;
  for (auto id : correct) {
    rejections += dynamic_cast<AsyncAveragingProcess&>(engine.process(id))
                      .rejected();
  }
  EXPECT_GT(rejections, 0u);
}

}  // namespace
}  // namespace rbvc
