#include "consensus/verifier.h"

#include <gtest/gtest.h>

#include "workload/generators.h"

namespace rbvc {
namespace {

TEST(VerifierTest, AgreementIdentical) {
  const std::vector<Vec> same = {{1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}};
  const auto a = check_agreement(same);
  EXPECT_TRUE(a.identical);
  EXPECT_DOUBLE_EQ(a.max_pairwise_linf, 0.0);
}

TEST(VerifierTest, AgreementSpreadMeasured) {
  const std::vector<Vec> spread = {{0.0, 0.0}, {0.1, 0.0}, {0.0, 0.3}};
  const auto a = check_agreement(spread);
  EXPECT_FALSE(a.identical);
  EXPECT_NEAR(a.max_pairwise_linf, 0.3, 1e-12);
  EXPECT_TRUE(check_epsilon_agreement(spread, 0.3));
  EXPECT_FALSE(check_epsilon_agreement(spread, 0.29));
}

TEST(VerifierTest, SingleOrEmptyDecisionsAgree) {
  EXPECT_TRUE(check_agreement({}).identical);
  EXPECT_TRUE(check_agreement({{1.0}}).identical);
}

TEST(VerifierTest, ExactValidity) {
  const std::vector<Vec> hull = {{0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}};
  EXPECT_TRUE(check_exact_validity({{0.5, 0.5}}, hull));
  EXPECT_FALSE(check_exact_validity({{0.5, 0.5}, {3.0, 3.0}}, hull));
}

TEST(VerifierTest, KValidity) {
  const std::vector<Vec> s = {{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_TRUE(check_k_validity({{1.0, 0.0}}, s, 1));   // box corner
  EXPECT_FALSE(check_k_validity({{1.0, 0.0}}, s, 2));  // not the segment
}

TEST(VerifierTest, DeltaValidityExcess) {
  const std::vector<Vec> hull = {{0.0, 0.0}};
  EXPECT_DOUBLE_EQ(
      delta_p_validity_excess({{3.0, 4.0}}, hull, 5.0, 2.0), 0.0);
  EXPECT_NEAR(delta_p_validity_excess({{3.0, 4.0}}, hull, 4.0, 2.0), 1.0,
              1e-9);
  // Worst decision dominates.
  EXPECT_NEAR(delta_p_validity_excess({{0.0, 0.0}, {3.0, 4.0}}, hull, 0.0,
                                      2.0),
              5.0, 1e-9);
}

TEST(VerifierTest, InputDependentDelta) {
  const std::vector<Vec> inputs = {{0.0, 0.0}, {3.0, 4.0}, {1.0, 0.0}};
  EXPECT_DOUBLE_EQ(input_dependent_delta(inputs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(input_dependent_delta(inputs, 1.0, kInfNorm), 4.0);
}

}  // namespace
}  // namespace rbvc
