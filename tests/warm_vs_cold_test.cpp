// Warm-started LP re-solves must be indistinguishable from cold solves:
// identical feasibility verdicts, objectives within tolerance, certified
// witnesses, and bitwise-deterministic results regardless of workspace
// history or executor width (DESIGN.md "LP warm starts").
#include <cstdlib>

#include <gtest/gtest.h>

#include "exec/parallel_executor.h"
#include "hull/delta_star.h"
#include "obs/metrics.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

// A standard-form LP whose feasibility depends on b: A is random, and b is
// either A x0 for a nonnegative x0 (feasible) or a random vector (either
// way). Costs are nonnegative so the LP is never unbounded.
struct RandomLp {
  Matrix a;
  Vec b;
  Vec c;
};

RandomLp random_lp(Rng& rng, std::size_t m, std::size_t n, bool feasible) {
  RandomLp lp{Matrix(m, n), Vec(m), Vec(n)};
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) lp.a(i, j) = rng.normal();
  }
  for (std::size_t j = 0; j < n; ++j) lp.c[j] = std::abs(rng.normal());
  if (feasible) {
    Vec x0(n);
    for (std::size_t j = 0; j < n; ++j) x0[j] = std::abs(rng.normal());
    for (std::size_t i = 0; i < m; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < n; ++j) s += lp.a(i, j) * x0[j];
      lp.b[i] = s;
    }
  } else {
    for (std::size_t i = 0; i < m; ++i) lp.b[i] = rng.normal();
  }
  return lp;
}

void expect_matches_cold(const lp::Solution& warm, const lp::Solution& cold,
                         const char* what) {
  ASSERT_EQ(warm.status, cold.status) << what;
  if (cold.status == lp::Status::kOptimal) {
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << what;
  }
}

TEST(WarmVsColdTest, ResolveRhsMatchesColdAcrossFeasibilityFlips) {
  Rng rng(9001);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t m = 3 + rep % 3;
    const std::size_t n = m + 2 + rep % 4;
    const RandomLp base = random_lp(rng, m, n, /*feasible=*/true);
    lp::IncrementalSolver solver;
    const lp::Solution prime = solver.solve(base.a, base.b, base.c);
    expect_matches_cold(prime, lp::solve_standard(base.a, base.b, base.c),
                        "cold prime");
    // A mix of feasible and (often) infeasible right-hand sides; the solver
    // must stay warm across infeasible verdicts too.
    for (int probe = 0; probe < 8; ++probe) {
      const RandomLp next =
          random_lp(rng, m, n, /*feasible=*/probe % 2 == 0);
      Vec b = next.b;
      const lp::Solution warm_sol = solver.resolve_rhs(b);
      expect_matches_cold(warm_sol, lp::solve_standard(base.a, b, base.c),
                          "resolve_rhs");
      if (warm_sol.status == lp::Status::kOptimal) {
        // The reported x must actually satisfy A x = b, x >= 0.
        ASSERT_EQ(warm_sol.x.size(), n);
        for (std::size_t i = 0; i < m; ++i) {
          double s = 0.0;
          for (std::size_t j = 0; j < n; ++j) s += base.a(i, j) * warm_sol.x[j];
          EXPECT_NEAR(s, b[i], 1e-6);
        }
        for (double xj : warm_sol.x) EXPECT_GE(xj, -1e-7);
      }
    }
  }
}

TEST(WarmVsColdTest, ResolveSubsetSwapMatchesCold) {
  Rng rng(9011);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t m = 4;
    const std::size_t n = 7;
    const RandomLp base = random_lp(rng, m, n, /*feasible=*/true);
    lp::IncrementalSolver solver;
    solver.solve(base.a, base.b, base.c);
    for (int swap = 0; swap < 4; ++swap) {
      // Same-shape problem sharing most coefficients: perturb one row.
      RandomLp next = base;
      const std::size_t row = static_cast<std::size_t>(swap) % m;
      for (std::size_t j = 0; j < n; ++j) next.a(row, j) += 0.25 * rng.normal();
      const lp::Solution warm_sol = solver.resolve(next.a, next.b, next.c);
      expect_matches_cold(warm_sol,
                          lp::solve_standard(next.a, next.b, next.c),
                          "resolve subset swap");
    }
  }
}

TEST(WarmVsColdTest, ProbeVerdictsMatchOneShotSolves) {
  Rng rng(9021);
  for (int rep = 0; rep < 4; ++rep) {
    const auto s = workload::random_simplex(rng, 3);
    for (double p : {1.0, kInfNorm}) {
      const double hi = gamma_excess(mean(s), s, 1, p);
      GammaDeltaProbe probe(s, 1, p, kTol);
      // Sweep down then up so warm re-solves cross the feasibility boundary
      // in both directions.
      std::vector<double> deltas;
      for (int k = 10; k >= 0; --k) deltas.push_back(hi * k / 10.0);
      for (int k = 1; k <= 10; ++k) deltas.push_back(hi * k / 10.0);
      for (double delta : deltas) {
        const auto warm = probe.probe(delta);
        const auto cold = gamma_delta_point_linear(s, 1, delta, p);
        ASSERT_EQ(warm.has_value(), cold.has_value())
            << "p=" << p << " delta=" << delta;
        if (warm) {
          // Witnesses may differ between bases; both must certify delta.
          EXPECT_LE(gamma_excess(*warm, s, 1, p), delta + 1e-6);
          EXPECT_LE(gamma_excess(*cold, s, 1, p), delta + 1e-6);
        }
      }
    }
  }
}

TEST(WarmVsColdTest, DeltaStarMatchesManualColdBisection) {
  Rng rng(9031);
  for (int rep = 0; rep < 3; ++rep) {
    const auto s = workload::random_simplex(rng, 3);
    for (double p : {1.0, kInfNorm}) {
      const auto warm = delta_star_linear(s, 1, p);
      // The pre-warm-start algorithm: a fresh cold LP per bisection probe.
      double lo = 0.0;
      double hi = gamma_excess(mean(s), s, 1, p);
      const double scale = std::max(1.0, hi);
      while (hi - lo > kTol * scale) {
        const double mid = 0.5 * (lo + hi);
        if (gamma_delta_point_linear(s, 1, mid, p)) {
          hi = mid;
        } else {
          lo = mid;
        }
      }
      EXPECT_NEAR(warm.value, hi, 1e-6 * scale) << "p=" << p;
      EXPECT_LE(gamma_excess(warm.point, s, 1, p), warm.value + 1e-6);
      EXPECT_FALSE(
          gamma_delta_point_linear(s, 1, warm.value * 0.98 - 1e-9, p));
    }
  }
}

TEST(WarmVsColdTest, ResultsIndependentOfWorkspaceHistory) {
  Rng rng(9041);
  const auto s = workload::random_simplex(rng, 4);
  const auto other = workload::gaussian_cloud(rng, 7, 3);

  const auto r2a = delta_star_2(s, 1);
  const auto rla = delta_star_linear(s, 1, kInfNorm);
  // Pollute the thread-local workspace with unrelated queries...
  (void)delta_star_linear(other, 2, 1.0);
  (void)delta_star_2(other, 2);
  (void)gamma_excess(mean(other), other, 1, kInfNorm);
  // ...and recompute: bitwise-identical results (the verification-by-
  // recomputation paths depend on this).
  const auto r2b = delta_star_2(s, 1);
  const auto rlb = delta_star_linear(s, 1, kInfNorm);
  EXPECT_EQ(r2a.value, r2b.value);
  EXPECT_EQ(r2a.point, r2b.point);
  EXPECT_EQ(rla.value, rlb.value);
  EXPECT_EQ(rla.point, rlb.point);
}

TEST(WarmVsColdTest, DeterministicAcrossExecutorWidths) {
  // Same episodes, jobs=1 (inline) vs jobs=4 (worker threads, one
  // thread-local workspace each): bitwise-identical per-episode results.
  constexpr std::size_t kEpisodes = 12;
  auto run = [&](std::size_t jobs) {
    std::vector<DeltaStarResult> out(kEpisodes);
    exec::ParallelExecutor pool(jobs);
    pool.parallel_for(kEpisodes, [&](std::size_t i) {
      Rng rng(1000 + 13 * static_cast<std::uint64_t>(i));
      const auto s = workload::random_simplex(rng, 3);
      out[i] = delta_star_linear(s, 1, i % 2 == 0 ? 1.0 : kInfNorm);
    });
    return out;
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  for (std::size_t i = 0; i < kEpisodes; ++i) {
    EXPECT_EQ(serial[i].value, parallel[i].value) << "episode " << i;
    EXPECT_EQ(serial[i].point, parallel[i].point) << "episode " << i;
  }
}

TEST(WarmVsColdTest, BisectionStaysWarm) {
  obs::Registry& reg = obs::global();
  const std::uint64_t attempts0 = reg.counter("lp.warm.attempts").value();
  const std::uint64_t hits0 = reg.counter("lp.warm.hits").value();

  Rng rng(9051);
  for (int rep = 0; rep < 3; ++rep) {
    const auto s = workload::random_simplex(rng, 3);
    (void)delta_star_linear(s, 1, kInfNorm);
  }

  const std::uint64_t attempts =
      reg.counter("lp.warm.attempts").value() - attempts0;
  const std::uint64_t hits = reg.counter("lp.warm.hits").value() - hits0;
  ASSERT_GT(attempts, 0u);
  // The bisection's probes all re-solve warm; subset-swap reuse may fall
  // back occasionally, so demand a high-but-not-perfect hit rate.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(attempts), 0.9);
}

}  // namespace
}  // namespace rbvc
