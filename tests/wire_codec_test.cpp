// Wire codec (net/wire.h): encode/decode fixpoint both directions, named
// rejection of malformed frames, and consistency between the codec's
// canonical content order and sim::MessageContentLess.

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <limits>

#include "net/wire.h"
#include "sim/trace.h"

namespace w = rbvc::net::wire;
using rbvc::Vec;
using rbvc::sim::Message;
using rbvc::sim::MessageContentLess;

namespace {

Message sample() {
  Message m("rbc", {3, -7, 1 << 20}, Vec{0.5, -2.25, 1e300});
  m.from = 2;
  m.to = 5;
  return m;
}

TEST(WireCodec, MessageRoundTripFixpoint) {
  const Message m = sample();
  const std::string body = w::encode_message(m);
  const Message back = w::decode_message(body);
  EXPECT_EQ(back, m);
  // encode(decode(b)) == b: re-encoding is byte-identical.
  EXPECT_EQ(w::encode_message(back), body);
}

TEST(WireCodec, EmptyFieldsRoundTrip) {
  Message m("", {}, Vec{});
  m.from = 0;
  m.to = 0;
  const Message back = w::decode_message(w::encode_message(m));
  EXPECT_EQ(back, m);
}

TEST(WireCodec, HostilePayloadBitsSurviveExactly) {
  // NaN, infinities, signed zero: raw IEEE bits must survive, even though
  // NaN breaks operator== -- compare re-encoded bytes instead.
  Message m("x", {},
            Vec{std::numeric_limits<double>::quiet_NaN(),
                std::numeric_limits<double>::infinity(),
                -std::numeric_limits<double>::infinity(), -0.0});
  const std::string body = w::encode_message(m);
  const Message back = w::decode_message(body);
  ASSERT_EQ(back.payload.size(), m.payload.size());
  EXPECT_EQ(w::encode_message(back), body);
  EXPECT_TRUE(std::isnan(back.payload[0]));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.payload[3]),
            std::bit_cast<std::uint64_t>(-0.0));
}

TEST(WireCodec, TrailingGarbageRejected) {
  std::string body = w::encode_message(sample());
  body.push_back('\0');
  EXPECT_THROW(
      {
        try {
          w::decode_message(body);
        } catch (const w::WireError& e) {
          EXPECT_STREQ(e.what(), "wire: trailing garbage");
          throw;
        }
      },
      w::WireError);
}

TEST(WireCodec, TruncatedBodyRejected) {
  const std::string body = w::encode_message(sample());
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_THROW(w::decode_message(body.substr(0, cut)), w::WireError)
        << "prefix of " << cut << " bytes decoded";
  }
}

TEST(WireCodec, ForgedElementCountRejected) {
  // A hostile encoder writing |payload| = 2^30 must be rejected up front
  // (the count exceeds what the remaining bytes could hold), not allocate.
  std::string body = w::encode_message(Message("k"));
  // Patch the payload count (last u32 of the body for an empty payload).
  ASSERT_GE(body.size(), 4u);
  body[body.size() - 4] = '\xff';
  body[body.size() - 3] = '\xff';
  body[body.size() - 2] = '\xff';
  body[body.size() - 1] = '\x3f';
  EXPECT_THROW(w::decode_message(body), w::WireError);
}

TEST(WireCodec, FrameRoundTrip) {
  const Message m = sample();
  const std::string framed = w::frame_message(m);
  const w::Frame f = w::unframe(framed);
  EXPECT_EQ(f.type, w::FrameType::kMessage);
  EXPECT_EQ(w::decode_message(f.body), m);
}

TEST(WireCodec, UnknownVersionRejectedByName) {
  std::string framed = w::frame_message(sample());
  framed[4] = '\x7e';  // version u16 lives after the u32 magic
  framed[5] = '\x00';
  try {
    w::unframe(framed);
    FAIL() << "unknown version accepted";
  } catch (const w::WireError& e) {
    EXPECT_STREQ(e.what(), "wire: unknown version 126");
  }
}

TEST(WireCodec, BadMagicRejected) {
  std::string framed = w::frame_message(sample());
  framed[0] = 'X';
  EXPECT_THROW(
      {
        try {
          w::unframe(framed);
        } catch (const w::WireError& e) {
          EXPECT_STREQ(e.what(), "wire: bad magic");
          throw;
        }
      },
      w::WireError);
}

TEST(WireCodec, OversizedFrameRejected) {
  // Forge a length field above kMaxBody: the deframer must poison the
  // stream instead of trying to buffer gigabytes.
  std::string framed = w::frame(w::FrameType::kMessage, "abc");
  const std::uint32_t huge = w::kMaxBody + 1;
  for (int i = 0; i < 4; ++i) {
    framed[8 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  }
  std::string buf = framed;
  EXPECT_THROW(
      {
        try {
          w::try_unframe(buf);
        } catch (const w::WireError& e) {
          EXPECT_STREQ(e.what(), "wire: oversized frame");
          throw;
        }
      },
      w::WireError);
}

TEST(WireCodec, IncrementalDeframing) {
  const Message a = sample();
  Message b("witness", {1}, Vec{3.0});
  b.from = 1;
  b.to = 2;
  const std::string stream = w::frame_message(a) + w::frame_message(b);
  // Feed the stream one byte at a time; frames must pop exactly when
  // complete and in order.
  std::string buf;
  std::vector<Message> got;
  for (const char c : stream) {
    buf.push_back(c);
    while (auto f = w::try_unframe(buf)) {
      got.push_back(w::decode_message(f->body));
    }
  }
  EXPECT_TRUE(buf.empty());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], a);
  EXPECT_EQ(got[1], b);
}

TEST(WireCodec, ExactUnframeRejectsTrailingBytes) {
  std::string framed = w::frame_message(sample());
  framed += "junk";
  EXPECT_THROW(w::unframe(framed), w::WireError);
}

TEST(WireCodec, TraceRoundTrip) {
  rbvc::sim::Trace t;
  t.set_enabled(true);
  t.record(rbvc::sim::EventType::kSend, 1, 0, "hello");
  t.record(rbvc::sim::EventType::kDeliver, 2, 1, "world");
  const std::string body = w::encode_trace(t);
  const rbvc::sim::Trace back = w::decode_trace(body);
  ASSERT_EQ(back.events().size(), t.events().size());
  EXPECT_EQ(w::encode_trace(back), body);
}

// The codec's canonical content order (kind, meta, payload) is the order
// MessageContentLess compares in -- sorting by content and sorting by
// encoded content bytes' field sequence must agree on which field decides.
TEST(WireCodec, ContentOrderMatchesMessageContentLess) {
  MessageContentLess less;
  // kind decides before meta and payload...
  EXPECT_TRUE(less(Message("a", {9}, Vec{9.0}), Message("b", {0}, Vec{0.0})));
  // ...meta decides before payload...
  EXPECT_TRUE(less(Message("a", {1}, Vec{9.0}), Message("a", {2}, Vec{0.0})));
  // ...payload decides last.
  EXPECT_TRUE(less(Message("a", {1}, Vec{1.0}), Message("a", {1}, Vec{2.0})));
  // Routing fields are NOT content: same content, different route.
  Message x("a", {1}, Vec{1.0});
  Message y = x;
  y.from = 3;
  y.to = 1;
  EXPECT_FALSE(less(x, y));
  EXPECT_FALSE(less(y, x));
  EXPECT_TRUE(x.same_content(y));
}

}  // namespace
