#include "protocols/witness.h"

#include <gtest/gtest.h>

namespace rbvc::protocols {
namespace {

class NullOutbox final : public sim::Outbox {
 public:
  void send(sim::ProcessId, sim::Message m) override {
    sent.push_back(std::move(m));
  }
  std::vector<sim::Message> sent;
};

sim::Message report_msg(sim::ProcessId from, int round,
                        std::initializer_list<int> ids) {
  sim::Message m;
  m.kind = "witness";
  m.from = from;
  m.meta.push_back(round);
  m.meta.insert(m.meta.end(), ids);
  return m;
}

TEST(WitnessTest, ReadyRequiresQuorumOfSubsets) {
  // n = 4, f = 1: need 3 witnesses whose reports are subsets of collected.
  WitnessExchange w(4, 1, 0);
  NullOutbox out;
  const std::set<sim::ProcessId> collected = {0, 1, 2};
  w.send_report(0, collected, out);  // our own report counts
  EXPECT_FALSE(w.ready(0, collected));
  w.on_message(report_msg(1, 0, {0, 1, 2}));
  EXPECT_FALSE(w.ready(0, collected));
  w.on_message(report_msg(2, 0, {0, 1, 2}));
  EXPECT_TRUE(w.ready(0, collected));
}

TEST(WitnessTest, ReportNotSubsetDoesNotCount) {
  WitnessExchange w(4, 1, 0);
  NullOutbox out;
  std::set<sim::ProcessId> collected = {0, 1, 2};
  w.send_report(0, collected, out);
  w.on_message(report_msg(1, 0, {0, 1, 3}));  // names 3, which we lack
  w.on_message(report_msg(2, 0, {0, 1, 2}));
  EXPECT_FALSE(w.ready(0, collected));
  // Once we collect 3, the pending report is satisfied retroactively.
  collected.insert(3);
  EXPECT_TRUE(w.ready(0, collected));
}

TEST(WitnessTest, RoundsAreIndependent) {
  WitnessExchange w(4, 1, 0);
  NullOutbox out;
  const std::set<sim::ProcessId> collected = {0, 1, 2};
  w.send_report(5, collected, out);
  w.on_message(report_msg(1, 5, {0, 1, 2}));
  w.on_message(report_msg(2, 5, {0, 1, 2}));
  EXPECT_TRUE(w.ready(5, collected));
  EXPECT_FALSE(w.ready(6, collected));
}

TEST(WitnessTest, TooSmallReportsRejected) {
  // A report naming fewer than n-f sources is not a meaningful witness.
  WitnessExchange w(4, 1, 0);
  NullOutbox out;
  const std::set<sim::ProcessId> collected = {0, 1, 2};
  w.send_report(0, collected, out);
  w.on_message(report_msg(1, 0, {0}));
  w.on_message(report_msg(2, 0, {1}));
  EXPECT_FALSE(w.ready(0, collected));
}

TEST(WitnessTest, MalformedIdsRejected) {
  WitnessExchange w(4, 1, 0);
  NullOutbox out;
  const std::set<sim::ProcessId> collected = {0, 1, 2};
  w.send_report(0, collected, out);
  sim::Message bad = report_msg(1, 0, {0, 1, 9});  // id 9 out of range
  w.on_message(bad);
  w.on_message(report_msg(2, 0, {0, 1, 2}));
  EXPECT_FALSE(w.ready(0, collected));
}

TEST(WitnessTest, FirstReportWins) {
  // A sender cannot improve its standing by re-reporting a different set.
  WitnessExchange w(4, 1, 0);
  NullOutbox out;
  const std::set<sim::ProcessId> collected = {0, 1, 2};
  w.send_report(0, collected, out);
  w.on_message(report_msg(1, 0, {0, 1, 3}));  // unsatisfiable for now
  w.on_message(report_msg(1, 0, {0, 1, 2}));  // second report: ignored
  w.on_message(report_msg(2, 0, {0, 1, 2}));
  EXPECT_FALSE(w.ready(0, collected));
}

TEST(WitnessTest, ReportBroadcastsToAll) {
  WitnessExchange w(4, 1, 2);
  NullOutbox out;
  w.send_report(0, {0, 1, 2}, out);
  EXPECT_EQ(out.sent.size(), 4u);
  EXPECT_EQ(out.sent[0].kind, "witness");
  EXPECT_EQ(out.sent[0].meta[0], 0);
}

}  // namespace
}  // namespace rbvc::protocols
