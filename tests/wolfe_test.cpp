#include <gtest/gtest.h>

#include <cmath>

#include "geometry/distance.h"
#include "geometry/hull.h"
#include "sim/rng.h"
#include "workload/generators.h"

namespace rbvc {
namespace {

const std::vector<Vec> kSquare = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};

TEST(WolfeTest, InsidePointHasZeroDistance) {
  const auto pr = project_to_hull({0.5, 0.5}, kSquare);
  EXPECT_NEAR(pr.distance, 0.0, 1e-7);
}

TEST(WolfeTest, ProjectionOntoEdge) {
  const auto pr = project_to_hull({2.0, 0.5}, kSquare);
  EXPECT_NEAR(pr.distance, 1.0, 1e-9);
  EXPECT_TRUE(approx_equal(pr.point, {1.0, 0.5}, 1e-8));
}

TEST(WolfeTest, ProjectionOntoVertex) {
  const auto pr = project_to_hull({2.0, 2.0}, kSquare);
  EXPECT_NEAR(pr.distance, std::sqrt(2.0), 1e-9);
  EXPECT_TRUE(approx_equal(pr.point, {1.0, 1.0}, 1e-8));
}

TEST(WolfeTest, SinglePointSet) {
  const std::vector<Vec> origin_only = {{0.0, 0.0}};
  const auto pr = project_to_hull({3.0, 4.0}, origin_only);
  EXPECT_NEAR(pr.distance, 5.0, 1e-12);
}

TEST(WolfeTest, DuplicatePointsHandled) {
  const std::vector<Vec> dups = {{1, 0}, {1, 0}, {1, 0}, {0, 1}};
  const auto pr = project_to_hull({2.0, 0.0}, dups);
  EXPECT_NEAR(pr.distance, 1.0, 1e-8);
}

TEST(WolfeTest, CoefficientsReconstructProjection) {
  Rng rng(17);
  const auto pts = workload::gaussian_cloud(rng, 7, 4);
  const Vec u = scale(5.0, rng.normal_vec(4));
  const auto pr = project_to_hull(u, pts);
  Vec recon = zeros(4);
  double sum = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_GE(pr.coeffs[i], -1e-10);
    axpy(pr.coeffs[i], pts[i], recon);
    sum += pr.coeffs[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-8);
  EXPECT_LT(dist2(recon, pr.point), 1e-8);
}

TEST(WolfeTest, OptimalityCondition) {
  // KKT: <u - proj, v - proj> <= 0 for every vertex v.
  Rng rng(29);
  for (int rep = 0; rep < 25; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 6, 3);
    const Vec u = scale(3.0, rng.normal_vec(3));
    const auto pr = project_to_hull(u, pts);
    const Vec grad = sub(u, pr.point);
    for (const Vec& v : pts) {
      EXPECT_LE(dot(grad, sub(v, pr.point)), 1e-6)
          << "rep " << rep << " violates KKT";
    }
  }
}

TEST(WolfeTest, MatchesMembershipOracle) {
  Rng rng(31);
  for (int rep = 0; rep < 30; ++rep) {
    const auto pts = workload::gaussian_cloud(rng, 8, 4);
    const Vec u = rng.normal_vec(4);
    const bool inside = in_hull(u, pts, 1e-8);
    const double dist = project_to_hull(u, pts).distance;
    if (inside) {
      EXPECT_LT(dist, 1e-5) << "rep " << rep;
    } else {
      EXPECT_GT(dist, 1e-7) << "rep " << rep;
    }
  }
}

TEST(WolfeTest, DegenerateCollinearSet) {
  const std::vector<Vec> line = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto pr = project_to_hull({0.0, 2.0}, line);
  EXPECT_NEAR(pr.distance, std::sqrt(2.0), 1e-8);
  EXPECT_TRUE(approx_equal(pr.point, {1.0, 1.0}, 1e-7));
}

TEST(WolfeTest, HighDimensionStress) {
  Rng rng(41);
  const auto pts = workload::gaussian_cloud(rng, 20, 12);
  const Vec u = scale(4.0, rng.normal_vec(12));
  const auto pr = project_to_hull(u, pts);
  // Verify against the Frank-Wolfe estimate (upper bound agreement).
  const double fw =
      detail::lp_projection_frank_wolfe(u, pts, 2.0, 50'000).distance;
  EXPECT_LE(pr.distance, fw + 1e-4);
  EXPECT_NEAR(pr.distance, fw, 5e-3);
}

}  // namespace
}  // namespace rbvc
