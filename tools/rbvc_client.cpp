// rbvc-client: drives a pipelined stream of consensus instances against a
// running rbvc-node cluster and reports throughput and decision latency.
// See docs/NETWORKING.md.
//
//   rbvc-client --cluster 127.0.0.1:7000,...,127.0.0.1:7004 --nodes 4
//               [--id 4] [--instances 100] [--window 8] [--quorum 3]
//               [--dim 2] [--seed 1] [--timeout-ms 30000]
//               [--metrics-out PATH] [--trace-out PATH]
//   rbvc-client --status --admin 127.0.0.1:7521,... [--admin-cmd status]
//
// The client occupies cluster slot --id (default: first slot after the
// nodes). --quorum ok decisions resolve an instance (default nodes - f
// with f = 1).
//
// --status skips the load run and instead queries each node's admin
// endpoint (rbvc-node --admin-port, net/admin.h), printing one line per
// endpoint: `node <idx> <reply>`. --admin-cmd selects the command (status,
// metrics, or trace; default status). Exits 1 if any endpoint is
// unreachable. --metrics-out / --trace-out write the registry JSON and
// flight-recorder JSONL after a load run (overriding RBVC_METRICS_OUT /
// RBVC_TRACE_OUT).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "net/admin.h"
#include "net/load.h"
#include "net/tcp_transport.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --cluster host:port,... --nodes N [--id I]\n"
               "          [--instances K] [--window W] [--quorum Q]\n"
               "          [--dim D] [--seed S] [--timeout-ms MS]\n"
               "          [--metrics-out PATH] [--trace-out PATH]\n"
               "       %s --status --admin host:port,... "
               "[--admin-cmd status|metrics|trace]\n",
               argv0, argv0);
  std::exit(2);
}

/// The --status mode: one admin round-trip per endpoint.
int run_status(const std::string& admin_csv, const std::string& cmd) {
  const auto endpoints = rbvc::net::parse_cluster(admin_csv);
  int rc = 0;
  for (std::size_t i = 0; i < endpoints.size(); ++i) {
    try {
      std::string reply =
          rbvc::net::admin_query(endpoints[i].host, endpoints[i].port, cmd);
      while (!reply.empty() && reply.back() == '\n') reply.pop_back();
      std::printf("node %zu %s\n", i, reply.c_str());
    } catch (const std::exception& e) {
      std::printf("node %zu unreachable: %s\n", i, e.what());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  long id = -1;
  long nodes = -1;
  bool status_mode = false;
  std::string cluster_csv;
  std::string admin_csv;
  std::string admin_cmd = "status";
  std::string metrics_out;
  std::string trace_out;
  rbvc::net::LoadOptions opt;
  opt.quorum = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--cluster") cluster_csv = next();
    else if (a == "--nodes") nodes = std::atol(next());
    else if (a == "--id") id = std::atol(next());
    else if (a == "--instances") opt.instances = std::strtoul(next(), nullptr, 10);
    else if (a == "--window") opt.window = std::strtoul(next(), nullptr, 10);
    else if (a == "--quorum") opt.quorum = std::strtoul(next(), nullptr, 10);
    else if (a == "--dim") opt.dim = std::strtoul(next(), nullptr, 10);
    else if (a == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--timeout-ms") opt.decision_timeout_ms = std::atoi(next());
    else if (a == "--status") status_mode = true;
    else if (a == "--admin") admin_csv = next();
    else if (a == "--admin-cmd") admin_cmd = next();
    else if (a == "--metrics-out") metrics_out = next();
    else if (a == "--trace-out") trace_out = next();
    else usage(argv[0]);
  }
  if (status_mode) {
    if (admin_csv.empty()) usage(argv[0]);
    return run_status(admin_csv, admin_cmd);
  }
  if (cluster_csv.empty() || nodes < 1) usage(argv[0]);

  auto cluster = rbvc::net::parse_cluster(cluster_csv);
  if (id < 0) id = nodes;
  if (static_cast<std::size_t>(id) >= cluster.size() || id < nodes) {
    std::fprintf(stderr, "rbvc-client: --id must be a client slot\n");
    return 2;
  }
  opt.nodes = static_cast<std::size_t>(nodes);
  if (opt.quorum == 0) opt.quorum = opt.nodes - 1;  // tolerate f = 1

  rbvc::obs::events::set_node(static_cast<std::int32_t>(id));
  rbvc::obs::events::install_crash_dump();

  try {
    rbvc::net::TcpTransport transport(static_cast<rbvc::net::ProcessId>(id),
                                      cluster);
    // Sends to unconnected peers drop (crash-fault model), so proposes
    // fired before the mesh is up would silently strand instances: wait
    // for every node, and refuse to start below quorum.
    const auto connected = transport.wait_connected(opt.nodes, 15000);
    if (connected < opt.quorum) {
      std::fprintf(stderr, "rbvc-client: only %zu/%zu nodes reachable\n",
                   connected, opt.nodes);
      return 1;
    }
    rbvc::net::ClusterClient client(transport, opt.nodes);
    const auto res = rbvc::net::run_pipelined_load(client, opt);
    std::printf(
        "decided=%zu failed=%zu stalled=%d elapsed_ms=%.1f "
        "throughput_per_s=%.2f p50_ms=%.2f p99_ms=%.2f\n",
        res.decided, res.failed, res.stalled ? 1 : 0, res.elapsed_ms,
        res.throughput_per_s(), res.latency_percentile(0.50),
        res.latency_percentile(0.99));
    transport.close();
    if (!metrics_out.empty()) rbvc::obs::export_global(metrics_out);
    if (!trace_out.empty()) rbvc::obs::events::export_trace(trace_out);
    if (res.stalled || res.decided < opt.instances) return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rbvc-client: fatal: %s\n", e.what());
    return 1;
  }
  return 0;
}
