// rbvc-node: one member of a TCP consensus cluster. Serves a stream of
// Relaxed Verified Averaging instances (proposed by rbvc-client) until
// SIGINT/SIGTERM, then prints a stats summary. See docs/NETWORKING.md.
//
//   rbvc-node --id 0 --cluster 127.0.0.1:7000,...,127.0.0.1:7004
//             --nodes 4 --f 1 [--rounds 4] [--rule relaxed-l2]
//             [--crash-after K] [--connect-timeout-ms 15000]
//             [--admin-port P] [--metrics-out PATH] [--trace-out PATH]
//
// The --cluster list names every endpoint, nodes first, then client slots;
// --nodes says how many of them are consensus nodes (default: all but the
// last entry). --admin-port exposes the live introspection endpoint
// (net/admin.h: status / metrics / trace over a line protocol on
// 127.0.0.1); --metrics-out / --trace-out write the registry JSON and the
// flight-recorder JSONL on exit (same formats as RBVC_METRICS_OUT /
// RBVC_TRACE_OUT, which they override).

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "net/admin.h"
#include "net/node.h"
#include "net/tcp_transport.h"
#include "obs/events.h"
#include "obs/metrics.h"

namespace {

std::atomic<bool> g_stop{false};
void on_signal(int) { g_stop.store(true, std::memory_order_release); }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id N --cluster host:port,... [--nodes N] [--f F]\n"
               "          [--rounds R] [--rule relaxed-l2|relaxed-linf|exact]\n"
               "          [--crash-after K] [--connect-timeout-ms MS]\n"
               "          [--admin-port P] [--metrics-out PATH] "
               "[--trace-out PATH]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using rbvc::consensus::AsyncAveragingProcess;
  long id = -1;
  long nodes = -1;
  long f = 1;
  long rounds = 4;
  long crash_after = 0;
  long connect_timeout_ms = 15000;
  long admin_port = -1;
  std::string cluster_csv;
  std::string rule = "relaxed-l2";
  std::string metrics_out;
  std::string trace_out;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--id") id = std::atol(next());
    else if (a == "--cluster") cluster_csv = next();
    else if (a == "--nodes") nodes = std::atol(next());
    else if (a == "--f") f = std::atol(next());
    else if (a == "--rounds") rounds = std::atol(next());
    else if (a == "--rule") rule = next();
    else if (a == "--crash-after") crash_after = std::atol(next());
    else if (a == "--connect-timeout-ms") connect_timeout_ms = std::atol(next());
    else if (a == "--admin-port") admin_port = std::atol(next());
    else if (a == "--metrics-out") metrics_out = next();
    else if (a == "--trace-out") trace_out = next();
    else usage(argv[0]);
  }
  if (id < 0 || cluster_csv.empty()) usage(argv[0]);

  auto cluster = rbvc::net::parse_cluster(cluster_csv);
  if (nodes < 0) nodes = static_cast<long>(cluster.size()) - 1;
  if (nodes < 1 || id >= nodes ||
      static_cast<std::size_t>(nodes) > cluster.size()) {
    std::fprintf(stderr, "rbvc-node: bad --id/--nodes for cluster of %zu\n",
                 cluster.size());
    return 2;
  }

  rbvc::net::ConsensusNode::Params params;
  params.prm.n = static_cast<std::size_t>(nodes);
  params.prm.f = static_cast<std::size_t>(f);
  params.prm.rounds = static_cast<std::size_t>(rounds);
  params.crash_after_decided = static_cast<std::size_t>(crash_after);
  if (rule == "relaxed-l2") {
    params.prm.rule = AsyncAveragingProcess::Round0Rule::kRelaxedL2;
  } else if (rule == "relaxed-linf") {
    params.prm.rule = AsyncAveragingProcess::Round0Rule::kRelaxedLinf;
  } else if (rule == "exact") {
    params.prm.rule = AsyncAveragingProcess::Round0Rule::kExactGamma;
  } else {
    usage(argv[0]);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  rbvc::obs::events::set_node(static_cast<std::int32_t>(id));
  rbvc::obs::events::install_crash_dump();

  try {
    rbvc::net::TcpTransport transport(static_cast<rbvc::net::ProcessId>(id),
                                      cluster);
    // Gate protocol start on the node mesh: up to f peers may already be
    // down, and the client dials in on its own schedule.
    const auto want = static_cast<std::size_t>(nodes - 1 - f);
    const auto got = transport.wait_connected(
        want, static_cast<int>(connect_timeout_ms));
    std::fprintf(stderr, "rbvc-node %ld: %zu/%ld peers connected\n", id, got,
                 nodes - 1);
    rbvc::net::ConsensusNode node(params, transport);
    std::unique_ptr<rbvc::net::AdminServer> admin;
    if (admin_port >= 0) {
      admin = std::make_unique<rbvc::net::AdminServer>(
          node, static_cast<std::uint16_t>(admin_port));
      std::fprintf(stderr, "rbvc-node %ld: admin on 127.0.0.1:%u\n", id,
                   admin->port());
    }
    node.serve(g_stop);
    const auto& s = node.stats();
    std::fprintf(stderr,
                 "rbvc-node %ld: proposed=%zu decided=%zu failed=%zu "
                 "dropped=%zu%s\n",
                 id, s.proposed, s.decided, s.failed, s.dropped,
                 node.crashed() ? " (crashed)" : "");
    if (admin) admin->close();
    transport.close();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rbvc-node %ld: fatal: %s\n", id, e.what());
    return 1;
  }
  if (!metrics_out.empty()) rbvc::obs::export_global(metrics_out);
  if (!trace_out.empty()) rbvc::obs::events::export_trace(trace_out);
  return 0;
}
