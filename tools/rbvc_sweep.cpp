// rbvc-sweep: multi-process episode sweep driver (docs/FLEET.md).
//
// Default mode forks `--workers` local worker processes and shards the
// chosen workload's episode range across them (fleet/spawn.h); with
// `--workers 1` the sweep runs fully in-process through the exact same
// harness path (harness/property.h), which is what CI's sweep-smoke job
// diffs fleet repro files against. A coordinator can also serve remote
// workers over TCP: `--listen PORT` accepts `--workers` connections, and
// `rbvc-sweep --worker HOST:PORT` turns the process into one such worker.
//
// Workloads are fixed, seeded property sweeps over the async consensus
// engine: `healthy` passes; `planted` uses the sub-quorum override so a
// known fraction of episodes violate agreement -- the sweep must report
// the lowest failing episode and write a repro file byte-identical to a
// single-process run at any worker count. CI kills a worker mid-sweep
// (`--kill-worker-after`) and checks exactly that.
//
// Exit code: 0 when the sweep ran to a verdict (pass OR planted failure),
// 2 on operational error. The verdict itself goes to stdout and, with
// --json, into a metrics dump (fleet.* counters, sweep.* gauges).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <stdexcept>
#include <string>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "fleet/spawn.h"
#include "harness/property.h"
#include "obs/metrics.h"
#include "workload/generators.h"

namespace {

using namespace rbvc;

struct Options {
  std::string workload = "healthy";  // healthy | planted
  std::size_t episodes = 0;          // 0 = workload default
  std::size_t workers = 1;
  std::size_t jobs = 0;  // per-worker pool width; 0 = RBVC_JOBS/default
  std::uint64_t seed = 20260806;
  std::uint64_t max_shard = 4096;
  std::uint64_t kill_after = 0;  // chaos: SIGKILL a worker after N shards
  std::string json;              // metrics dump path
  std::string repro_dir = ".";
  int listen_port = -1;         // coordinator for TCP workers
  std::string worker_connect;   // worker mode: HOST:PORT
};

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: rbvc-sweep [--workload healthy|planted] [--episodes N]\n"
      "                  [--workers N] [--jobs N] [--seed S]\n"
      "                  [--max-shard N] [--kill-worker-after K]\n"
      "                  [--repro-out DIR] [--json PATH]\n"
      "                  [--listen PORT | --worker HOST:PORT]\n");
  std::exit(2);
}

Options parse_args(int argc, char** argv) {
  Options o;
  auto value = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage_and_exit();
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--workload") {
      o.workload = value(i);
    } else if (a == "--episodes") {
      o.episodes = std::strtoul(value(i), nullptr, 10);
    } else if (a == "--workers") {
      o.workers = std::strtoul(value(i), nullptr, 10);
    } else if (a == "--jobs") {
      o.jobs = std::strtoul(value(i), nullptr, 10);
    } else if (a == "--seed") {
      o.seed = std::strtoull(value(i), nullptr, 10);
    } else if (a == "--max-shard") {
      o.max_shard = std::strtoull(value(i), nullptr, 10);
    } else if (a == "--kill-worker-after") {
      o.kill_after = std::strtoull(value(i), nullptr, 10);
    } else if (a == "--json") {
      o.json = value(i);
    } else if (a == "--repro-out") {
      o.repro_dir = value(i);
    } else if (a == "--listen") {
      o.listen_port = static_cast<int>(std::strtol(value(i), nullptr, 10));
    } else if (a == "--worker") {
      o.worker_connect = value(i);
    } else {
      std::fprintf(stderr, "rbvc-sweep: unknown flag %s\n", a.c_str());
      usage_and_exit();
    }
  }
  if (o.workload != "healthy" && o.workload != "planted") {
    std::fprintf(stderr, "rbvc-sweep: unknown workload %s\n",
                 o.workload.c_str());
    usage_and_exit();
  }
  return o;
}

/// The sweep workloads. Both are deterministic functions of (seed, episode
/// index) -- coordinator and TCP workers reconstruct identical properties
/// from the flags alone, so the protocol never ships closures.
harness::AsyncProperty make_workload(const Options& o) {
  harness::AsyncProperty prop;
  prop.base_seed = o.seed;
  prop.repro_dir = o.repro_dir;
  if (o.workload == "planted") {
    // Sub-quorum override (test-only hook): divergent views surface as
    // disagreement in a known fraction of episodes.
    prop.name = "sweep_planted";
    prop.generate = [](Rng& rng) {
      workload::AsyncExperiment e;
      e.prm.n = 4;
      e.prm.f = 1;
      e.prm.rounds = 2;
      e.prm.use_witness = false;
      e.prm.quorum_override = 2;
      e.d = 2;
      e.honest_inputs = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
      e.scheduler = workload::SchedulerKind::kRandom;
      e.seed = rng.next_u64();
      return e;
    };
    prop.episodes = o.episodes ? o.episodes : 24;
    prop.shrink_budget = 120;
  } else {
    prop.name = "sweep_healthy";
    prop.generate = [](Rng& rng) {
      workload::AsyncExperiment e;
      e.prm.n = 4;
      e.prm.f = 1;
      e.prm.rounds = 4;
      e.d = 2;
      e.honest_inputs = workload::gaussian_cloud(rng, 3, 2);
      e.byzantine_ids = {rng.below(4)};
      e.strategy = workload::AsyncStrategy::kOutlierInput;
      e.seed = rng.next_u64();
      return e;
    };
    prop.episodes = o.episodes ? o.episodes : 64;
  }
  prop.oracle = harness::decide_agree_valid_oracle(0.5, 1.0);
  return prop;
}

fleet::WorkerJob make_job(const harness::AsyncProperty& prop,
                          std::size_t jobs) {
  fleet::WorkerJob job;
  job.jobs = jobs;
  job.episode = [&prop](std::size_t ep) {
    return harness::detail::episode_fails(prop, ep);
  };
  job.failure_report = [&prop](std::size_t failing) {
    const harness::detail::FailureTail t =
        harness::detail::failure_tail(prop, failing);
    fleet::FailureReport rep;
    rep.episode = failing;
    rep.original_len = t.original_len;
    rep.shrunk_len = t.shrunk_len;
    rep.message = t.failure;
    rep.repro_text = t.repro_text;
    return rep;
  };
  return job;
}

int run_tcp_worker(const Options& o) {
  const auto colon = o.worker_connect.rfind(':');
  if (colon == std::string::npos) usage_and_exit();
  const std::string host = o.worker_connect.substr(0, colon);
  const int port =
      static_cast<int>(std::strtol(o.worker_connect.c_str() + colon + 1,
                                   nullptr, 10));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("rbvc-sweep: socket failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("rbvc-sweep: bad worker address " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("rbvc-sweep: connect to " + o.worker_connect +
                             " failed");
  }
  const harness::AsyncProperty prop = make_workload(o);
  const int rc = fleet::run_worker(fd, make_job(prop, o.jobs));
  ::close(fd);
  return rc;
}

/// Accepts `o.workers` TCP workers and coordinates them. The workers must
/// be launched with the same --workload/--seed/--episodes flags.
fleet::SweepOutcome run_tcp_coordinator(const Options& o,
                                        const harness::AsyncProperty& prop) {
  const int lfd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (lfd < 0) throw std::runtime_error("rbvc-sweep: socket failed");
  const int one = 1;
  ::setsockopt(lfd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(o.listen_port));
  if (::bind(lfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(lfd, static_cast<int>(o.workers)) != 0) {
    throw std::runtime_error("rbvc-sweep: bind/listen on port " +
                             std::to_string(o.listen_port) + " failed");
  }
  std::printf("rbvc-sweep: waiting for %zu workers on 127.0.0.1:%d\n",
              o.workers, o.listen_port);
  fleet::SweepConfig cfg;
  cfg.episodes = prop.episodes;
  cfg.workers = o.workers;
  cfg.max_shard = o.max_shard;
  cfg.chaos_kill_after_shards = 0;  // no pids to kill over TCP
  cfg.publish_metrics = true;       // single-sweep process: safe to mint
  fleet::Coordinator coord(cfg);
  for (std::size_t i = 0; i < o.workers; ++i) {
    const int wfd = ::accept(lfd, nullptr, nullptr);
    if (wfd < 0) throw std::runtime_error("rbvc-sweep: accept failed");
    coord.add_worker(wfd, /*pid=*/0);
  }
  ::close(lfd);
  return coord.run();
}

int run_sweep(const Options& o) {
  const harness::AsyncProperty prop = make_workload(o);
  const auto t0 = std::chrono::steady_clock::now();

  harness::PropertyResult r;
  fleet::SweepStats stats;
  if (o.listen_port >= 0 || o.workers > 1) {
    fleet::SweepOutcome sw;
    if (o.listen_port >= 0) {
      sw = run_tcp_coordinator(o, prop);
    } else {
      fleet::SweepConfig cfg;
      cfg.episodes = prop.episodes;
      cfg.workers = o.workers;
      cfg.max_shard = o.max_shard;
      cfg.chaos_kill_after_shards = o.kill_after;
      cfg.publish_metrics = true;  // single-sweep process: safe to mint
      sw = fleet::run_forked_sweep(cfg, make_job(prop, o.jobs));
    }
    stats = sw.stats;
    r.episodes = static_cast<std::size_t>(sw.episodes);
    if (sw.failed) {
      r.passed = false;
      r.failing_episode = static_cast<std::size_t>(sw.failing_episode);
      r.failure = sw.failure;
      r.original_len = static_cast<std::size_t>(sw.original_len);
      r.shrunk_len = static_cast<std::size_t>(sw.shrunk_len);
      r.repro_path = harness::detail::repro_file_path(prop);
      harness::write_repro_text(r.repro_path, sw.repro_text);
    }
  } else {
    // Single-process reference path: the exact harness pipeline fleet
    // runs are diffed against.
    ::unsetenv("RBVC_WORKERS");
    if (o.jobs) {
      ::setenv("RBVC_JOBS", std::to_string(o.jobs).c_str(), 1);
    }
    r = harness::check_property<harness::AsyncRunner>(prop);
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  const double eps_per_s =
      wall_ms > 0 ? 1000.0 * static_cast<double>(r.episodes) / wall_ms : 0.0;

  std::printf("workload:  %s (episodes=%zu seed=%llu)\n", o.workload.c_str(),
              prop.episodes, static_cast<unsigned long long>(o.seed));
  std::printf("fanout:    workers=%zu jobs=%zu\n", o.workers,
              o.jobs ? o.jobs : exec::default_jobs());
  std::printf("verdict:   %s\n", r.passed ? "PASS" : "FAIL");
  if (!r.passed) {
    std::printf("failing:   episode %zu: %s\n", r.failing_episode,
                r.failure.c_str());
    std::printf("schedule:  %zu -> %zu entries\n", r.original_len,
                r.shrunk_len);
    std::printf("repro:     %s\n", r.repro_path.c_str());
  }
  std::printf("episodes:  %zu in %.1f ms (%.1f episodes/s)\n", r.episodes,
              wall_ms, eps_per_s);
  if (o.workers > 1 || o.listen_port >= 0) {
    std::printf(
        "fleet:     shards=%llu reassigned=%llu deaths=%llu restarts=%llu\n",
        static_cast<unsigned long long>(stats.shards_completed),
        static_cast<unsigned long long>(stats.shards_reassigned),
        static_cast<unsigned long long>(stats.worker_deaths),
        static_cast<unsigned long long>(stats.worker_restarts));
  }

  if (!o.json.empty()) {
    // Minted after the sweep (and after any repro write), so these keys
    // can never leak into a repro's metrics snapshot.
    obs::Registry& reg = obs::global();
    reg.gauge("sweep.episodes").set(static_cast<double>(r.episodes));
    reg.gauge("sweep.failed").set(r.passed ? 0.0 : 1.0);
    reg.gauge("sweep.wall_ms").set(wall_ms);
    reg.gauge("sweep.episodes_per_s").set(eps_per_s);
    reg.gauge("sweep.workers").set(static_cast<double>(o.workers));
    obs::export_global(o.json);
    std::printf("metrics:   %s\n", o.json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options o = parse_args(argc, argv);
    if (!o.worker_connect.empty()) return run_tcp_worker(o);
    return run_sweep(o);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rbvc-sweep: %s\n", e.what());
    return 2;
  }
}
