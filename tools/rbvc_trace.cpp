// rbvc-trace: joins per-node flight-recorder logs (obs/events.h JSONL, as
// written by RBVC_TRACE_OUT / --trace-out / the admin `trace` command) into
// one causally ordered timeline, verifies the Lamport-clock ordering, and
// attributes per-instance latency across the pipeline stages. See
// docs/OBSERVABILITY.md.
//
//   rbvc-trace [--out merged.jsonl] [--perfetto trace.json]
//              [--require-decided N] node0.jsonl node1.jsonl ...
//
// The merged order is (lamport, ts, node, ...): every framed receive sorts
// after its send because the receiver merged the sender's stamp before
// recording anything. The causal check enforces exactly that invariant --
// each frame_rx event carrying a sender stamp (a > 0) must have
// lamport > a -- and any violation fails the run (exit 1), which is what
// the CI smoke asserts over a real 4-node cluster.
//
// The attribution table splits where decided instances spent their time:
//   rx-queue   mailbox wait, push -> pop        (queue_pop.a)
//   codec      frame encode + decode            (frame_tx.b + frame_rx.b)
//   lp/geom    LP-kernel time inside callbacks  (proto_step.b)
//   protocol   callback time minus the LP share (proto_step.a - proto_step.b)
// plus the end-to-end lines: node decide latency (instance_decided.b) and
// client propose -> quorum latency (decision.b). Stage times are sums of
// per-node wall time and overlap across nodes, so they explain where time
// went, not wall-clock elapsed.
//
// --perfetto writes Chrome trace-event JSON (load in ui.perfetto.dev or
// chrome://tracing): one pid per node, proto steps as complete events, the
// rest as instants. Steady-clock epochs differ per process, so cross-node
// alignment is indicative only; the Lamport order is the ground truth.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/events.h"

namespace {

using rbvc::obs::events::Event;
using rbvc::obs::events::Type;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--out merged.jsonl] [--perfetto trace.json]\n"
               "          [--require-decided N] log.jsonl [log.jsonl ...]\n",
               argv0);
  std::exit(2);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "rbvc-trace: cannot read %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// The same order snapshot() uses; receives sort after their sends.
bool causal_less(const Event& x, const Event& y) {
  return std::tie(x.lamport, x.ts_ns, x.node, x.type, x.instance, x.a, x.b) <
         std::tie(y.lamport, y.ts_ns, y.node, y.type, y.instance, y.a, y.b);
}

double ms(double ns) { return ns / 1e6; }

struct Attribution {
  double rx_queue_ns = 0;
  double codec_ns = 0;
  double lp_ns = 0;
  double proto_ns = 0;  // callback time net of the LP share
  double decide_ns_sum = 0;  // per-node instance_decided latencies
  std::size_t decide_reports = 0;
  double client_ns_sum = 0;  // client propose -> quorum latencies
  std::size_t client_decisions = 0;
};

void write_perfetto(const std::string& path, const std::vector<Event>& evs) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "rbvc-trace: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[512];
  for (const Event& e : evs) {
    const char* name = rbvc::obs::events::type_name(e.type);
    const double ts_us = static_cast<double>(e.ts_ns) / 1000.0;
    if (e.type == Type::kProtoStep) {
      // Complete event spanning the callback; ts is its end in the log, so
      // shift back by the duration to get the start.
      const double dur_us = static_cast<double>(e.a) / 1000.0;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,"
                    "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"inst\":%d,"
                    "\"lp_ns\":%lld,\"lc\":%llu}}",
                    first ? "" : ",", name, e.node, e.node,
                    ts_us - dur_us, dur_us, e.instance,
                    static_cast<long long>(e.b),
                    static_cast<unsigned long long>(e.lamport));
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,"
                    "\"tid\":%d,\"ts\":%.3f,\"args\":{\"inst\":%d,"
                    "\"a\":%lld,\"b\":%lld,\"lc\":%llu}}",
                    first ? "" : ",", name, e.node, e.node, ts_us, e.instance,
                    static_cast<long long>(e.a), static_cast<long long>(e.b),
                    static_cast<unsigned long long>(e.lamport));
    }
    out << buf;
    first = false;
  }
  out << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string perfetto_path;
  long require_decided = -1;
  std::vector<std::string> inputs;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--out") out_path = next();
    else if (a == "--perfetto") perfetto_path = next();
    else if (a == "--require-decided") require_decided = std::atol(next());
    else if (!a.empty() && a[0] == '-') usage(argv[0]);
    else inputs.push_back(a);
  }
  if (inputs.empty()) usage(argv[0]);

  std::vector<Event> all;
  for (const auto& path : inputs) {
    std::vector<Event> evs;
    try {
      evs = rbvc::obs::events::parse_jsonl(slurp(path));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "rbvc-trace: %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    all.insert(all.end(), evs.begin(), evs.end());
  }
  std::sort(all.begin(), all.end(), causal_less);

  // Causal verification: a receive must be ordered after the send it names.
  std::size_t stamped_rx = 0;
  std::size_t violations = 0;
  std::set<int> nodes;
  for (const Event& e : all) {
    if (e.node >= 0) nodes.insert(e.node);
    if (e.type == Type::kFrameRx && e.a > 0) {
      ++stamped_rx;
      if (e.lamport <= static_cast<std::uint64_t>(e.a)) {
        ++violations;
        if (violations <= 5) {
          std::fprintf(stderr,
                       "rbvc-trace: CAUSAL VIOLATION: node %d frame_rx "
                       "lc=%llu <= sender stamp %lld\n",
                       e.node, static_cast<unsigned long long>(e.lamport),
                       static_cast<long long>(e.a));
        }
      }
    }
  }

  // Attribution over instance-tagged events.
  Attribution t;
  std::set<int> decided;
  for (const Event& e : all) {
    switch (e.type) {
      case Type::kQueuePop:
        t.rx_queue_ns += static_cast<double>(e.a);
        break;
      case Type::kFrameTx:
      case Type::kFrameRx:
        t.codec_ns += static_cast<double>(e.b);
        break;
      case Type::kProtoStep:
        t.lp_ns += static_cast<double>(e.b);
        t.proto_ns += static_cast<double>(e.a - e.b);
        break;
      case Type::kInstanceDecided:
        t.decide_ns_sum += static_cast<double>(e.b);
        ++t.decide_reports;
        if (e.a == 1) decided.insert(e.instance);
        break;
      case Type::kDecision:
        t.client_ns_sum += static_cast<double>(e.b);
        ++t.client_decisions;
        if (e.a == 1) decided.insert(e.instance);
        break;
      default:
        break;
    }
  }

  std::printf("events=%zu logs=%zu nodes=%zu lamport_max=%llu\n", all.size(),
              inputs.size(), nodes.size(),
              all.empty()
                  ? 0ULL
                  : static_cast<unsigned long long>(all.back().lamport));
  std::printf("causal: stamped_rx=%zu violations=%zu\n", stamped_rx,
              violations);
  std::printf("decided_instances=%zu\n", decided.size());

  const double n_dec = decided.empty() ? 1.0 : static_cast<double>(decided.size());
  const double active =
      t.rx_queue_ns + t.codec_ns + t.lp_ns + t.proto_ns;
  auto row = [&](const char* stage, double ns) {
    std::printf("  %-10s %12.3f ms total  %10.4f ms/decided  %5.1f%%\n",
                stage, ms(ns), ms(ns) / n_dec,
                active > 0 ? 100.0 * ns / active : 0.0);
  };
  std::printf("latency attribution (summed across nodes):\n");
  row("rx-queue", t.rx_queue_ns);
  row("codec", t.codec_ns);
  row("lp/geom", t.lp_ns);
  row("protocol", t.proto_ns);
  if (t.decide_reports > 0) {
    std::printf("  node decide latency: %.4f ms mean over %zu reports\n",
                ms(t.decide_ns_sum) / static_cast<double>(t.decide_reports),
                t.decide_reports);
  }
  if (t.client_decisions > 0) {
    std::printf("  client quorum latency: %.4f ms mean over %zu decisions\n",
                ms(t.client_ns_sum) / static_cast<double>(t.client_decisions),
                t.client_decisions);
  }

  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "rbvc-trace: cannot write %s\n", out_path.c_str());
      return 2;
    }
    out << rbvc::obs::events::dump_jsonl(all);
  }
  if (!perfetto_path.empty()) write_perfetto(perfetto_path, all);

  if (violations > 0) {
    std::fprintf(stderr, "rbvc-trace: FAIL: %zu causal violations\n",
                 violations);
    return 1;
  }
  if (require_decided >= 0 &&
      decided.size() < static_cast<std::size_t>(require_decided)) {
    std::fprintf(stderr, "rbvc-trace: FAIL: %zu decided instances < %ld\n",
                 decided.size(), require_decided);
    return 1;
  }
  return 0;
}
